"""Figure 4 / Theorem 2: building Σ from HΣ in ``AS[HΣ]`` (unique identifiers).

The reduction combines two ingredients:

* the HΣ detector ``D`` (source), and
* a detector ``X`` of the auxiliary class ℰ (Definition 1), which can itself
  be built without any detector in ``AS[∅]`` (Figure 3 /
  :class:`~repro.algorithms.script_alive.ScriptAliveProgram`).

Task T1 repeatedly broadcasts ``LABELS(id(p), D.h_labels_p)`` and, whenever
some pair ``(x, m) ∈ D.h_quora_p`` is *covered* — every identifier of ``m``
is known to carry label ``x`` (via the ``idents_p[x]`` sets maintained by
Task T2) — picks among the covered candidates the multiset whose worst rank
in ``X.alive`` is smallest and outputs it as the Σ quorum ``trusted_p``.

Task T2 records, for every label it hears about, which identifiers announced
carrying it.
"""

from __future__ import annotations

from ..detectors.base import OutputKeys
from ..detectors.views import SigmaView
from ..errors import ReductionError
from ..identity import IdentityMultiset
from ..sim.message import Message
from ..sim.process import ProcessContext
from .base import PeriodicReductionProgram

__all__ = ["HSigmaToSigma"]

KEYS = OutputKeys()


class HSigmaToSigma(PeriodicReductionProgram):
    """The Figure 4 reduction (code for one process)."""

    def __init__(
        self,
        *,
        source_detector: str = "HSigma",
        script_e_detector: str = "ScriptE",
        **kwargs,
    ) -> None:
        super().__init__(source_detector=source_detector, **kwargs)
        self.script_e_detector = script_e_detector
        self.trusted: frozenset = frozenset()
        self._idents: dict = {}

    def emulated_view(self) -> SigmaView:
        return SigmaView(lambda: self.trusted)

    def on_setup(self, ctx: ProcessContext) -> None:
        ctx.on("LABELS", self._on_labels)

    # ------------------------------------------------------------------
    # Task T1
    # ------------------------------------------------------------------
    def refresh(self, ctx: ProcessContext) -> None:
        hsigma = ctx.detector(self.source_detector)
        script_e = ctx.detector(self.script_e_detector)
        ctx.broadcast("LABELS", identity=ctx.identity, labels=tuple(hsigma.h_labels))

        candidates = []
        for label, multiset in hsigma.h_quora:
            if not isinstance(multiset, IdentityMultiset):
                multiset = IdentityMultiset(multiset)
            if self._multiset_has_homonyms(multiset):
                raise ReductionError(
                    "the HΣ → Σ reduction is only defined for systems with unique "
                    f"identifiers; quorum {sorted(map(repr, multiset))} has homonyms"
                )
            known = self._idents.get(label)
            if known is not None and multiset.support() <= known:
                candidates.append(multiset)
        if candidates:
            chosen = min(
                candidates,
                key=lambda m: (
                    max(script_e.rank(identity) for identity in m.support()),
                    sorted(map(repr, m.support())),
                ),
            )
            self.trusted = frozenset(chosen.support())
        if self.record_outputs and self.trusted:
            ctx.record(KEYS.SIGMA_TRUSTED, self.trusted)

    # ------------------------------------------------------------------
    # Task T2
    # ------------------------------------------------------------------
    def _on_labels(self, message: Message) -> None:
        identity = message["identity"]
        for label in message["labels"]:
            self._idents.setdefault(label, set()).add(identity)

    @staticmethod
    def _multiset_has_homonyms(multiset: IdentityMultiset) -> bool:
        return len(multiset.support()) != len(multiset)

    def describe(self) -> str:
        return "Figure-4 HΣ→Σ"
