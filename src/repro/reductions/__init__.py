"""Reductions (transformations) between failure-detector classes.

Each reduction is a process program that, given access to a detector of the
source class, emulates the output of a detector of the target class — the
standard notion of "class X is stronger than class X′" from Chandra & Toueg
that the paper uses in Section 3.3.  The emulated outputs are recorded under
the standard trace keys so the property checkers of
:mod:`repro.detectors.properties` can confirm the emulation is correct, and
exposed as views so other programs can consume them.

Implemented reductions (paper item → class):

==============================  ==============================================
Figure 1 / Theorem 1 (case 1)   :class:`SigmaToHSigmaWithMembership`
Figure 2 / Theorem 1 (case 2)   :class:`SigmaToHSigmaUnknownMembership`
Figure 4 / Theorem 2            :class:`HSigmaToSigma`
Theorem 3                       :class:`ASigmaToHSigma`
Lemma 2 / Theorem 4             :class:`APToDiamondHP`
Lemma 3 / Theorem 4             :class:`APToHSigma`
Observation 1                   :class:`DiamondHPToHOmega`
==============================  ==============================================

The Figure 5 relation graph itself lives in
:mod:`repro.reductions.registry`.
"""

from .ap_to_homonymous import APToDiamondHP, APToHSigma
from .asigma_to_hsigma import ASigmaToHSigma
from .hsigma_to_sigma import HSigmaToSigma
from .ohp_to_homega import DiamondHPToHOmega
from .registry import (
    Relation,
    equivalent_classes,
    is_stronger,
    paper_relations,
    relation_graph,
)
from .sigma_to_hsigma import SigmaToHSigmaUnknownMembership, SigmaToHSigmaWithMembership

__all__ = [
    "APToDiamondHP",
    "APToHSigma",
    "ASigmaToHSigma",
    "DiamondHPToHOmega",
    "HSigmaToSigma",
    "Relation",
    "SigmaToHSigmaUnknownMembership",
    "SigmaToHSigmaWithMembership",
    "equivalent_classes",
    "is_stronger",
    "paper_relations",
    "relation_graph",
]
