"""Lemmas 2–3 / Theorem 4: ◇HP and HΣ from AP in ``AAS[∅]``, no communication.

Both transformations read the AP detector's ``anap`` bound and rewrite it as a
multiset of ``anap`` copies of the default identifier ``⊥``:

* **Lemma 2** (:class:`APToDiamondHP`): ``h_trusted ← ⊥^anap``.  Once ``anap``
  is tight (equals ``|Correct|``), ``h_trusted`` equals ``I(Correct)`` because
  every identifier in an anonymous system is ``⊥``.
* **Lemma 3** (:class:`APToHSigma`): for each observed value ``y`` of
  ``anap``, the label ``⊥^y`` is added to ``h_labels`` and the pair
  ``(⊥^y, ⊥^y)`` to ``h_quora``.
"""

from __future__ import annotations

from ..detectors.base import OutputKeys
from ..detectors.views import DiamondHPView, HSigmaView
from ..identity import ANONYMOUS_IDENTITY, IdentityMultiset
from ..sim.process import ProcessContext
from .base import PeriodicReductionProgram

__all__ = ["APToDiamondHP", "APToHSigma"]

KEYS = OutputKeys()


class APToDiamondHP(PeriodicReductionProgram):
    """Lemma 2: ◇HP from AP (code for one process)."""

    def __init__(
        self,
        *,
        source_detector: str = "AP",
        default_identity=ANONYMOUS_IDENTITY,
        **kwargs,
    ) -> None:
        super().__init__(source_detector=source_detector, **kwargs)
        self._default_identity = default_identity
        self.h_trusted = IdentityMultiset()

    def emulated_view(self) -> DiamondHPView:
        return DiamondHPView(lambda: self.h_trusted)

    def refresh(self, ctx: ProcessContext) -> None:
        bound = ctx.detector(self.source_detector).anap
        self.h_trusted = IdentityMultiset.uniform(self._default_identity, bound)
        if self.record_outputs:
            ctx.record(KEYS.H_TRUSTED, self.h_trusted)

    def describe(self) -> str:
        return "Lemma-2 AP→◇HP"


class APToHSigma(PeriodicReductionProgram):
    """Lemma 3: HΣ from AP (code for one process)."""

    def __init__(
        self,
        *,
        source_detector: str = "AP",
        default_identity=ANONYMOUS_IDENTITY,
        **kwargs,
    ) -> None:
        super().__init__(source_detector=source_detector, **kwargs)
        self._default_identity = default_identity
        self.h_labels: frozenset = frozenset()
        self.h_quora: frozenset = frozenset()

    def emulated_view(self) -> HSigmaView:
        return HSigmaView(lambda: self.h_quora, lambda: self.h_labels)

    def refresh(self, ctx: ProcessContext) -> None:
        bound = ctx.detector(self.source_detector).anap
        quorum = IdentityMultiset.uniform(self._default_identity, bound)
        label = quorum  # the label ⊥^y is the multiset itself
        self.h_labels = self.h_labels | {label}
        self.h_quora = self.h_quora | {(label, quorum)}
        if self.record_outputs:
            ctx.record(KEYS.H_QUORA, self.h_quora)
            ctx.record(KEYS.H_LABELS, self.h_labels)

    def describe(self) -> str:
        return "Lemma-3 AP→HΣ"
