"""Setuptools entry point (kept for environments that build without PEP 517)."""

from setuptools import setup

setup()
