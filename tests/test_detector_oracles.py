"""Tests for the ground-truth detector oracles.

Each oracle is attached to a simulated system whose processes sample it
periodically; the recorded trace is then validated with the corresponding
property checker.  This both tests the oracles and exercises the checkers on
known-good behaviour.
"""

from __future__ import annotations

import pytest

from repro.detectors import (
    AOmegaOracle,
    APOracle,
    ASigmaOracle,
    DiamondHPOracle,
    DiamondPOracle,
    HOmegaOracle,
    HSigmaOracle,
    OmegaOracle,
    PerfectOracle,
    ScriptEOracle,
    SigmaOracle,
    check_aomega_election,
    check_ap,
    check_asigma,
    check_diamond_hp,
    check_diamond_p,
    check_homega_election,
    check_hsigma,
    check_omega_election,
    check_script_e,
    check_sigma,
)
from repro.detectors.probe import (
    aomega_probes,
    ap_probes,
    asigma_probes,
    diamond_hp_probes,
    diamond_p_probes,
    homega_probes,
    hsigma_probes,
    omega_probes,
    script_e_probes,
    sigma_probes,
)
from repro.errors import DetectorError
from repro.identity import IdentityMultiset, ProcessId
from repro.membership import anonymous_identities, grouped_identities, unique_identities
from repro.sim import Clock, CrashSchedule

from .helpers import make_services, run_probe_system


def p(index: int) -> ProcessId:
    return ProcessId(index)


CRASH_ONE = CrashSchedule.at_times({p(1): 10.0})


class TestHOmegaOracle:
    def test_election_after_stabilization(self, homonymous_six):
        _, trace = run_probe_system(
            homonymous_six,
            detectors={"HOmega": lambda services: HOmegaOracle(services, stabilization_time=15.0)},
            probes=homega_probes(),
            crash_schedule=CRASH_ONE,
            until=40.0,
        )
        pattern = _pattern(homonymous_six, CRASH_ONE)
        result = check_homega_election(trace, pattern)
        assert result.ok, result.violations
        assert result.stabilization_time is not None
        assert result.stabilization_time >= 10.0

    def test_pre_stabilization_noise_changes_leaders(self, homonymous_six):
        services = make_services(homonymous_six, clock=Clock())
        oracle = HOmegaOracle(services, stabilization_time=100.0, noise_period=5.0)
        views = [oracle.view_for(process) for process in homonymous_six.processes]
        outputs = {view.h_leader for view in views}
        # With six processes and noisy output it is overwhelmingly likely that
        # at least two disagree; the point is that disagreement is *possible*.
        assert len(outputs) >= 1
        services.clock.advance_to(150.0)
        stabilized = {view.read() for view in views}
        assert len(stabilized) == 1

    def test_eventual_leader_is_min_correct_identity(self, paper_example_membership):
        schedule = CrashSchedule.at_times({p(0): 1.0})
        services = make_services(paper_example_membership, crash_schedule=schedule)
        oracle = HOmegaOracle(services, stabilization_time=5.0)
        leader, multiplicity = oracle.eventual_leader()
        # Correct processes are p1 (id A) and p2 (id B): leader id is A, mult 1.
        assert leader == "A"
        assert multiplicity == 1
        assert oracle.leader_processes() == frozenset({p(1)})

    def test_multiplicity_counts_only_correct_homonyms(self):
        membership = grouped_identities([3, 1])  # ids: g0,g0,g0,g1
        schedule = CrashSchedule.at_times({p(0): 2.0})
        services = make_services(membership, crash_schedule=schedule)
        oracle = HOmegaOracle(services, stabilization_time=5.0)
        leader, multiplicity = oracle.eventual_leader()
        assert leader == "grp0"
        assert multiplicity == 2


class TestDiamondHPOracle:
    def test_converges_to_correct_multiset(self, homonymous_six):
        _, trace = run_probe_system(
            homonymous_six,
            detectors={"DiamondHP": lambda s: DiamondHPOracle(s, stabilization_time=15.0)},
            probes=diamond_hp_probes(),
            crash_schedule=CRASH_ONE,
            until=40.0,
        )
        result = check_diamond_hp(trace, _pattern(homonymous_six, CRASH_ONE))
        assert result.ok, result.violations

    def test_pre_stabilization_trusts_alive_superset(self, homonymous_six):
        services = make_services(homonymous_six, crash_schedule=CRASH_ONE)
        oracle = DiamondHPOracle(services, stabilization_time=50.0)
        view = oracle.view_for(p(0))
        expected_all = homonymous_six.identity_multiset()
        assert view.h_trusted == expected_all
        services.clock.advance_to(60.0)
        assert view.h_trusted == _pattern(homonymous_six, CRASH_ONE).correct_identity_multiset()


class TestHSigmaOracle:
    def test_all_four_properties_hold(self, homonymous_six):
        _, trace = run_probe_system(
            homonymous_six,
            detectors={"HSigma": lambda s: HSigmaOracle(s, stabilization_time=15.0)},
            probes=hsigma_probes(),
            crash_schedule=CRASH_ONE,
            until=40.0,
        )
        result = check_hsigma(trace, _pattern(homonymous_six, CRASH_ONE))
        assert result.ok, result.violations

    def test_works_with_many_failures(self):
        membership = grouped_identities([2, 2, 2])
        schedule = CrashSchedule.at_times({p(0): 5.0, p(2): 6.0, p(4): 7.0})
        _, trace = run_probe_system(
            membership,
            detectors={"HSigma": lambda s: HSigmaOracle(s, stabilization_time=10.0)},
            probes=hsigma_probes(),
            crash_schedule=schedule,
            until=40.0,
        )
        result = check_hsigma(trace, _pattern(membership, schedule))
        assert result.ok, result.violations

    def test_label_holders(self, homonymous_six):
        services = make_services(homonymous_six, crash_schedule=CRASH_ONE)
        oracle = HSigmaOracle(services)
        assert oracle.label_holders("hΣ:all") == frozenset(homonymous_six.processes)
        assert oracle.label_holders("hΣ:correct") == _pattern(homonymous_six, CRASH_ONE).correct
        assert oracle.label_holders("unknown") == frozenset()


class TestClassicalOracles:
    def test_diamond_p(self, unique_five):
        _, trace = run_probe_system(
            unique_five,
            detectors={"DiamondP": lambda s: DiamondPOracle(s, stabilization_time=15.0)},
            probes=diamond_p_probes(),
            crash_schedule=CRASH_ONE,
            until=40.0,
        )
        result = check_diamond_p(trace, _pattern(unique_five, CRASH_ONE))
        assert result.ok, result.violations

    def test_omega(self, unique_five):
        _, trace = run_probe_system(
            unique_five,
            detectors={"Omega": lambda s: OmegaOracle(s, stabilization_time=15.0)},
            probes=omega_probes(),
            crash_schedule=CRASH_ONE,
            until=40.0,
        )
        result = check_omega_election(trace, _pattern(unique_five, CRASH_ONE))
        assert result.ok, result.violations

    def test_sigma(self, unique_five):
        _, trace = run_probe_system(
            unique_five,
            detectors={"Sigma": lambda s: SigmaOracle(s, stabilization_time=15.0)},
            probes=sigma_probes(),
            crash_schedule=CRASH_ONE,
            until=40.0,
        )
        result = check_sigma(trace, _pattern(unique_five, CRASH_ONE))
        assert result.ok, result.violations

    def test_perfect_oracle_suspects_only_crashed(self, unique_five):
        services = make_services(unique_five, crash_schedule=CRASH_ONE)
        oracle = PerfectOracle(services)
        view = oracle.view_for(p(0))
        assert view.trusted == frozenset()
        services.clock.advance_to(20.0)
        assert view.trusted == {unique_five.identity_of(p(1))}

    def test_classical_oracles_reject_homonymous_memberships(self, paper_example_membership):
        services = make_services(paper_example_membership)
        for oracle_class in (DiamondPOracle, OmegaOracle, SigmaOracle, PerfectOracle):
            with pytest.raises(DetectorError):
                oracle_class(services)

    def test_script_e(self, unique_five):
        _, trace = run_probe_system(
            unique_five,
            detectors={"ScriptE": lambda s: ScriptEOracle(s, stabilization_time=15.0)},
            probes=script_e_probes(),
            crash_schedule=CRASH_ONE,
            until=40.0,
        )
        result = check_script_e(trace, _pattern(unique_five, CRASH_ONE))
        assert result.ok, result.violations

    def test_script_e_rejects_homonyms(self, paper_example_membership):
        with pytest.raises(DetectorError):
            ScriptEOracle(make_services(paper_example_membership))


class TestAnonymousOracles:
    def test_ap(self, anonymous_five):
        _, trace = run_probe_system(
            anonymous_five,
            detectors={"AP": lambda s: APOracle(s, stabilization_time=15.0)},
            probes=ap_probes(),
            crash_schedule=CRASH_ONE,
            until=40.0,
        )
        result = check_ap(trace, _pattern(anonymous_five, CRASH_ONE))
        assert result.ok, result.violations

    def test_ap_with_pessimism_still_safe(self, anonymous_five):
        _, trace = run_probe_system(
            anonymous_five,
            detectors={"AP": lambda s: APOracle(s, stabilization_time=15.0, pessimism=2)},
            probes=ap_probes(),
            crash_schedule=CRASH_ONE,
            until=40.0,
        )
        result = check_ap(trace, _pattern(anonymous_five, CRASH_ONE))
        assert result.ok, result.violations

    def test_aomega(self, anonymous_five):
        _, trace = run_probe_system(
            anonymous_five,
            detectors={"AOmega": lambda s: AOmegaOracle(s, stabilization_time=15.0)},
            probes=aomega_probes(),
            crash_schedule=CRASH_ONE,
            until=40.0,
        )
        result = check_aomega_election(trace, _pattern(anonymous_five, CRASH_ONE))
        assert result.ok, result.violations

    def test_asigma(self, anonymous_five):
        _, trace = run_probe_system(
            anonymous_five,
            detectors={"ASigma": lambda s: ASigmaOracle(s, stabilization_time=15.0)},
            probes=asigma_probes(),
            crash_schedule=CRASH_ONE,
            until=40.0,
        )
        result = check_asigma(trace, _pattern(anonymous_five, CRASH_ONE))
        assert result.ok, result.violations

    def test_anonymous_oracles_accept_any_membership(self, homonymous_six):
        services = make_services(homonymous_six)
        APOracle(services)
        AOmegaOracle(services)
        ASigmaOracle(services)

    def test_ap_never_below_alive_count(self, anonymous_five):
        schedule = CrashSchedule.at_times({p(0): 5.0, p(1): 30.0})
        services = make_services(anonymous_five, crash_schedule=schedule)
        oracle = APOracle(services, stabilization_time=10.0)
        view = oracle.view_for(p(2))
        services.clock.advance_to(12.0)
        # p1 is still alive at t=12 although faulty: output must stay >= 4.
        assert view.anap >= 4


def _pattern(membership, schedule):
    from repro.sim.failures import FailurePattern

    return FailurePattern(membership, schedule)
