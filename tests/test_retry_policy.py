"""The shared retry vocabulary: policies, histories, and their adopters.

Covers :mod:`repro.retry` itself (validation, decorrelated-jitter schedules,
deadlines, the sync driver) and the two tier-1-visible adopters: the cache's
retried atomic writes and the worker pool's crash-history-carrying
:class:`WorkerCrashError`.
"""

from __future__ import annotations

import os
import random

import pytest

from repro.errors import ConfigurationError, WorkerCrashError
from repro.retry import (
    Attempt,
    RetryExhaustedError,
    RetryHistory,
    RetryPolicy,
    retry_call,
)
from repro.runtime.cache import RunCache


# -- RetryPolicy: validation ------------------------------------------------


@pytest.mark.parametrize(
    "kwargs",
    [
        {"base": 0.0},
        {"base": -1.0},
        {"base": 1.0, "cap": 0.5},
        {"max_attempts": 0},
        {"deadline": 0.0},
        {"deadline": -3.0},
    ],
)
def test_policy_rejects_nonsense(kwargs) -> None:
    with pytest.raises(ConfigurationError):
        RetryPolicy(**kwargs)


# -- RetryPolicy: the schedule ---------------------------------------------


def test_seeded_schedule_replays_bit_identically() -> None:
    policy = RetryPolicy(base=0.05, cap=2.0, max_attempts=8)
    first = list(policy.delays(random.Random(41)))
    second = list(policy.delays(random.Random(41)))
    assert first == second
    assert list(policy.delays(random.Random(42))) != first


def test_schedule_length_and_bounds() -> None:
    """max_attempts tries ⇒ max_attempts − 1 sleeps, each in [base, cap]."""
    policy = RetryPolicy(base=0.05, cap=0.4, max_attempts=30)
    delays = list(policy.delays(random.Random(7)))
    assert len(delays) == policy.max_attempts - 1
    assert all(policy.base <= delay <= policy.cap for delay in delays)
    # decorrelated jitter actually jitters: the schedule is not constant
    assert len(set(delays)) > 1


def test_single_attempt_policy_never_sleeps() -> None:
    assert list(RetryPolicy(max_attempts=1).delays(random.Random(0))) == []


def test_deadline_stops_the_schedule_early() -> None:
    policy = RetryPolicy(base=0.05, cap=2.0, max_attempts=1_000, deadline=10.0)
    now = [0.0]

    def clock() -> float:
        return now[0]

    schedule = policy.delays(random.Random(3), clock=clock)
    taken = [next(schedule)]  # inside the budget
    now[0] = 10.0  # the deadline has passed
    assert list(schedule) == []
    assert taken  # but the pre-deadline draw happened


def test_remaining_tracks_the_deadline() -> None:
    policy = RetryPolicy(deadline=5.0)
    assert policy.remaining(100.0, clock=lambda: 103.0) == pytest.approx(2.0)
    assert RetryPolicy().remaining(0.0, clock=lambda: 1e9) == float("inf")


# -- RetryHistory -----------------------------------------------------------


def test_history_renders_the_one_line_story() -> None:
    history = RetryHistory()
    history.record(1, ConnectionRefusedError("refused"), backoff=0.08)
    history.record(2, "gave up")
    assert len(history) == 2
    text = history.describe()
    assert "attempt 1: ConnectionRefusedError: refused (backed off 0.080s)" in text
    assert text.endswith("attempt 2: gave up")
    assert RetryHistory().describe() == "no attempts recorded"
    assert Attempt(number=3, cause="x").describe() == "attempt 3: x"


# -- retry_call -------------------------------------------------------------


def test_retry_call_succeeds_after_transient_failures() -> None:
    calls = {"n": 0}
    slept: list[float] = []

    def flaky() -> str:
        calls["n"] += 1
        if calls["n"] < 3:
            raise OSError("transient")
        return "ok"

    policy = RetryPolicy(base=0.01, cap=0.05, max_attempts=5)
    result = retry_call(
        flaky, policy=policy, rng=random.Random(1), sleep=slept.append
    )
    assert result == "ok"
    assert calls["n"] == 3
    assert len(slept) == 2  # one sleep per failed attempt
    assert slept == list(policy.delays(random.Random(1)))[:2]


def test_retry_call_exhaustion_embeds_the_history() -> None:
    def doomed() -> None:
        raise OSError("disk on fire")

    with pytest.raises(RetryExhaustedError) as excinfo:
        retry_call(
            doomed,
            policy=RetryPolicy(base=0.01, cap=0.02, max_attempts=3),
            sleep=lambda _: None,
            describe="cache write entry.json",
        )
    error = excinfo.value
    assert "cache write entry.json failed after 3 attempt(s)" in str(error)
    assert str(error).count("disk on fire") == 3
    assert len(error.history) == 3
    assert error.history.attempts[-1].backoff is None  # no sleep after the last
    assert isinstance(error.__cause__, OSError)


def test_retry_call_propagates_non_retryable_immediately() -> None:
    calls = {"n": 0}

    def broken() -> None:
        calls["n"] += 1
        raise ValueError("a bug, not weather")

    with pytest.raises(ValueError):
        retry_call(broken, policy=RetryPolicy(max_attempts=5), sleep=lambda _: None)
    assert calls["n"] == 1


# -- adopter: RunCache.put retries transient OS errors ----------------------


def test_cache_put_survives_a_transient_oserror(tmp_path, monkeypatch) -> None:
    calls = {"n": 0}
    real_replace = os.replace

    def flaky_replace(src, dst):
        calls["n"] += 1
        if calls["n"] == 1:
            raise OSError("transient")
        return real_replace(src, dst)

    monkeypatch.setattr(os, "replace", flaky_replace)
    cache = RunCache(tmp_path)
    assert cache.put("k", {"v": 1}) is True
    assert calls["n"] == 2
    assert cache.get("k") == {"v": 1}


def test_cache_put_gives_up_cleanly_when_retries_exhaust(tmp_path, monkeypatch) -> None:
    def always_fails(src, dst):
        raise OSError("read-only filesystem")

    monkeypatch.setattr(os, "replace", always_fails)
    cache = RunCache(tmp_path)
    assert cache.put("k", {"v": 1}) is False  # best-effort contract: no raise
    assert cache.get("k") is None
    leftovers = [p for p in tmp_path.rglob("*") if p.is_file() and p.suffix == ".tmp"]
    assert leftovers == []  # the temp file does not leak


# -- adopter: WorkerCrashError carries its retry history --------------------


def test_worker_crash_error_folds_history_into_the_message() -> None:
    history = [
        "attempt 1: pool died on one of 2 in-flight item(s) (e.g. e1[seed=0])",
        "attempt 2: pool died on one of 1 in-flight item(s) (e.g. e1[seed=3])",
    ]
    error = WorkerCrashError(
        "worker crashed", candidates=["e1[seed=3]"], history=history
    )
    text = str(error)
    assert "[crash history: 2 attempt(s): " in text
    assert "attempt 1: " in text and "attempt 2: " in text
    assert error.candidates == ["e1[seed=3]"]
    assert error.history == history


def test_worker_crash_error_without_history_is_unchanged() -> None:
    error = WorkerCrashError("worker crashed", candidates=["x"])
    assert str(error) == "worker crashed"
    assert error.history == []
