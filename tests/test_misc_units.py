"""Unit tests for smaller pieces: errors, messages, traces, composition, scenarios."""

from __future__ import annotations

import pytest

from repro import __version__
from repro.detectors import DetectorProbeProgram, HOmegaOracle, HSigmaOracle
from repro.detectors.classes import DetectorClass, detector_catalog, info_for
from repro.errors import (
    ConfigurationError,
    ConsensusViolationError,
    DetectorError,
    ProcessCrashedError,
    ReductionError,
    ReproError,
    SchedulingError,
    SimulationError,
    TraceError,
    UnknownDetectorClassError,
)
from repro.identity import ProcessId
from repro.membership import grouped_identities, unique_identities
from repro.sim import (
    AsynchronousTiming,
    CompositeProgram,
    CrashSchedule,
    Message,
    ProcessProgram,
    RunTrace,
    Simulation,
    build_system,
)
from repro.workloads.scenarios import ConsensusScenario, DetectorScenario


def p(index: int) -> ProcessId:
    return ProcessId(index)


class TestErrorsHierarchy:
    def test_all_errors_derive_from_repro_error(self):
        for error_class in (
            ConfigurationError,
            ConsensusViolationError,
            DetectorError,
            ProcessCrashedError,
            ReductionError,
            SchedulingError,
            SimulationError,
            TraceError,
            UnknownDetectorClassError,
        ):
            assert issubclass(error_class, ReproError)

    def test_process_crashed_is_a_simulation_error(self):
        assert issubclass(ProcessCrashedError, SimulationError)

    def test_version_exposed(self):
        assert __version__.count(".") == 2


class TestMessage:
    def test_field_access(self):
        message = Message("PING", {"round": 3, "identity": "A"})
        assert message["round"] == 3
        assert message.get("identity") == "A"
        assert message.get("missing", "fallback") == "fallback"

    def test_matches(self):
        message = Message("PH1", {"round": 2, "estimate": "x"})
        assert message.matches(round=2)
        assert message.matches(round=2, estimate="x")
        assert not message.matches(round=3)
        assert not message.matches(missing=1)

    def test_repr_contains_kind_and_fields(self):
        message = Message("COORD", {"round": 1})
        assert "COORD" in repr(message)
        assert "round=1" in repr(message)


class TestRunTraceQueries:
    def test_value_at_returns_last_record_before_time(self):
        trace = RunTrace()
        trace.record(p(0), "x", 1, 1.0)
        trace.record(p(0), "x", 2, 5.0)
        assert trace.value_at(p(0), "x", 0.5, default="none") == "none"
        assert trace.value_at(p(0), "x", 1.0) == 1
        assert trace.value_at(p(0), "x", 10.0) == 2

    def test_keys_and_processes_recorded(self):
        trace = RunTrace()
        trace.record(p(1), "a", 1, 0.0)
        trace.record(p(1), "b", 2, 0.0)
        assert trace.keys_recorded(p(1)) == {"a", "b"}
        assert trace.processes_with_records() == {p(1)}
        assert trace.keys_recorded(p(9)) == frozenset()

    def test_first_time_value_holds(self):
        trace = RunTrace()
        trace.record(p(0), "x", "bad", 1.0)
        trace.record(p(0), "x", "good", 2.0)
        trace.record(p(0), "x", "bad", 3.0)
        trace.record(p(0), "x", "good", 4.0)
        assert trace.first_time_value_holds(p(0), "x", lambda v: v == "good") == 4.0
        assert trace.first_time_value_holds(p(0), "x", lambda v: v == "never") is None

    def test_decision_queries(self):
        trace = RunTrace()
        trace.record_decision(p(0), "v", 3.0)
        trace.record_decision(p(0), "other", 4.0)  # ignored: first decision wins
        assert trace.decision_of(p(0)).value == "v"
        assert trace.decided(p(0))
        assert not trace.decided(p(1))
        assert trace.last_decision_time() == 3.0
        with pytest.raises(TraceError):
            trace.decision_of(p(1))

    def test_all_records_iterates_everything(self):
        trace = RunTrace()
        trace.record(p(0), "a", 1, 0.0)
        trace.record(p(1), "b", 2, 1.0)
        assert len(list(trace.all_records())) == 2

    def test_empty_trace_defaults(self):
        trace = RunTrace()
        assert trace.last_decision_time() is None
        assert trace.final_value(p(0), "x", default=42) == 42
        assert trace.broadcast_invocations == 0
        assert trace.message_copies_delivered == 0


class TestDetectorCatalog:
    def test_catalog_covers_every_class(self):
        catalog = detector_catalog()
        assert set(catalog) == set(DetectorClass)

    def test_info_for_known_class(self):
        info = info_for(DetectorClass.H_OMEGA)
        assert info.family == "homonymous"
        assert "h_leader" in info.output

    def test_str_of_class_is_its_symbol(self):
        assert str(DetectorClass.H_SIGMA) == "HΣ"


class TestCompositeProgram:
    class _Recorder(ProcessProgram):
        def __init__(self, tag):
            self.tag = tag

        def setup(self, ctx):
            ctx.record("setup", self.tag)

        def describe(self):
            return self.tag

    def test_runs_all_components_and_describes_them(self):
        membership = unique_identities(2)
        composite_factory = lambda pid, identity: CompositeProgram(
            self._Recorder("first"), self._Recorder("second")
        )
        system = build_system(
            membership=membership,
            timing=AsynchronousTiming(),
            program_factory=composite_factory,
            seed=1,
        )
        trace = Simulation(system).run(until=1.0)
        values = [value for _, value in trace.values_of(p(0), "setup")]
        assert values == ["first", "second"]
        assert "first + second" == CompositeProgram(
            self._Recorder("first"), self._Recorder("second")
        ).describe()

    def test_requires_at_least_one_component(self):
        with pytest.raises(ConfigurationError):
            CompositeProgram()


class TestProbeValidation:
    def test_rejects_non_positive_period(self):
        with pytest.raises(ValueError):
            DetectorProbeProgram({}, period=0)

    def test_samples_bound_respected(self):
        membership = unique_identities(2)
        system = build_system(
            membership=membership,
            timing=AsynchronousTiming(),
            program_factory=lambda pid, identity: DetectorProbeProgram(
                {"probe.key": lambda ctx: ctx.identity}, period=1.0, samples=3
            ),
            seed=1,
        )
        trace = Simulation(system).run(until=20.0)
        assert len(trace.records_of(p(0), "probe.key")) == 3


class TestScenarios:
    def test_detector_scenario_runs(self):
        membership = grouped_identities([2, 1])
        scenario = DetectorScenario(
            membership=membership,
            program_factory=lambda pid, identity: DetectorProbeProgram(
                {"probe.key": lambda ctx: 1}, period=1.0, samples=2
            ),
            timing=AsynchronousTiming(),
            horizon=10.0,
            seed=4,
        )
        trace, pattern = scenario.run()
        assert pattern.correct == set(membership.processes)
        assert trace.records_of(p(0), "probe.key")

    def test_consensus_scenario_custom_detectors_and_proposals(self):
        from repro.consensus import HOmegaMajorityConsensus

        membership = grouped_identities([2, 1])
        proposals = {process: "same" for process in membership.processes}
        scenario = ConsensusScenario(
            membership=membership,
            consensus_factory=lambda proposal: HOmegaMajorityConsensus(
                proposal, n=membership.size
            ),
            proposals=proposals,
            detectors={
                "HOmega": lambda services: HOmegaOracle(services, stabilization_time=2.0)
            },
            horizon=200.0,
            seed=6,
        )
        _, _, verdict = scenario.run()
        assert verdict.ok
        assert set(verdict.decided_values.values()) == {"same"}

    def test_consensus_scenario_default_detectors_include_hsigma(self):
        membership = grouped_identities([2, 1])
        scenario = ConsensusScenario(
            membership=membership,
            consensus_factory=lambda proposal: None,  # not used here
        )
        detectors = scenario.resolved_detectors()
        assert set(detectors) == {"HOmega", "HSigma"}


class TestSchedulerEdgeCases:
    def test_run_until_in_the_past_rejected(self):
        membership = unique_identities(2)
        system = build_system(
            membership=membership,
            timing=AsynchronousTiming(),
            program_factory=lambda pid, identity: DetectorProbeProgram(
                {"k": lambda ctx: 0}, period=1.0, samples=1
            ),
            seed=1,
        )
        simulation = Simulation(system)
        simulation.run(until=10.0)
        with pytest.raises(SimulationError):
            simulation.run(until=5.0)

    def test_max_events_guard(self):
        class ChattyProgram(ProcessProgram):
            def setup(self, ctx):
                ctx.spawn(lambda: self._loop(ctx), name="chatty")

            def _loop(self, ctx):
                while True:
                    ctx.broadcast("NOISE")
                    yield ctx.sleep(0.001)

        membership = unique_identities(3)
        system = build_system(
            membership=membership,
            timing=AsynchronousTiming(min_latency=0.001, max_latency=0.002),
            program_factory=lambda pid, identity: ChattyProgram(),
            seed=1,
        )
        simulation = Simulation(system)
        with pytest.raises(SimulationError):
            simulation.run(until=1_000.0, max_events=2_000)

    def test_unknown_detector_lookup_raises(self):
        membership = unique_identities(2)
        system = build_system(
            membership=membership,
            timing=AsynchronousTiming(),
            program_factory=lambda pid, identity: DetectorProbeProgram(
                {"k": lambda ctx: 0}, period=1.0, samples=1
            ),
            seed=1,
        )
        simulation = Simulation(system)
        with pytest.raises(SimulationError):
            simulation.detector("nope")

    def test_crashed_process_cannot_broadcast(self):
        from repro.sim import Clock, EventQueue, ProcessRuntime

        membership = unique_identities(1)

        class Idle(ProcessProgram):
            def setup(self, ctx):
                pass

        runtime = ProcessRuntime(
            p(0),
            "id0",
            Idle(),
            clock=Clock(),
            queue=EventQueue(),
            timing=AsynchronousTiming(),
            trace=RunTrace(),
            rng=__import__("random").Random(0),
            broadcast_fn=lambda sender, message: None,
        )
        runtime.start()
        runtime.crash()
        with pytest.raises(ProcessCrashedError):
            runtime.broadcast(Message("X"))
