"""Smoke tests for the experiment harness (quick mode).

Each experiment must run, produce rows and a renderable table, and report the
headline result the paper's corresponding claim predicts.
"""

from __future__ import annotations

import pytest

from repro.analysis import ExperimentResult
from repro.experiments import (
    ALL_EXPERIMENTS,
    run_e1,
    run_e2,
    run_e3,
    run_e4,
    run_e5,
    run_e6,
    run_e7,
    run_e8,
    run_e9,
)


class TestHarnessShape:
    def test_all_experiments_registered(self):
        # E11 is wall-clock (real backend) and deliberately absent here.
        assert set(ALL_EXPERIMENTS) == {f"E{i}" for i in range(1, 11)} | {"E12"}

    @pytest.mark.parametrize("name", sorted(ALL_EXPERIMENTS))
    def test_each_experiment_produces_rows_and_table(self, name):
        result = ALL_EXPERIMENTS[name](quick=True, seed=1)
        assert isinstance(result, ExperimentResult)
        assert result.rows
        table = result.table()
        assert name in table
        assert result.summary


class TestExperimentHeadlines:
    def test_e1_detector_converges_and_ablation_fails(self):
        result = run_e1(quick=True, seed=2)
        assert result.summary["adaptive_all_converged"]
        assert result.summary["adaptive_all_homega_ok"]
        assert not result.summary["fixed_timeout_converged"]

    def test_e2_all_hsigma_properties_hold(self):
        result = run_e2(quick=True, seed=2)
        assert result.summary["all_properties_hold"]

    def test_e3_all_reductions_emulate_their_target(self):
        result = run_e3(quick=True, seed=2)
        assert result.summary["all_reductions_ok"]
        assert result.summary["corollary_1_sigma_hsigma_asigma_equivalent"]
        assert result.summary["ap_reaches_homega_in_aas"]
        assert result.summary["asigma_does_not_reach_homega_in_aas"]

    def test_e4_consensus_with_majority_always_correct(self):
        result = run_e4(quick=True, seed=2)
        assert result.summary["all_terminated"]
        assert result.summary["all_safe"]

    def test_e5_consensus_with_hsigma_survives_majority_crashes(self):
        result = run_e5(quick=True, seed=2)
        assert result.summary["all_terminated"]
        assert result.summary["all_safe"]
        assert result.summary["runs_with_majority_crashed"] > 0
        assert result.summary["majority_crashed_all_terminated"]

    def test_e6_spectrum_always_correct(self):
        result = run_e6(quick=True, seed=2)
        assert result.summary["all_terminated"]
        assert result.summary["all_safe"]

    def test_e7_coordination_phase_reduces_rounds(self):
        result = run_e7(quick=True, seed=2)
        assert result.summary["both_variants_always_safe"]
        assert result.summary["with_coordination_termination_rate"] == 1.0
        # The ablated variant needs strictly more rounds on average.
        assert (
            result.summary["mean_rounds_without_coordination"]
            > result.summary["mean_rounds_with_coordination"]
        )

    def test_e8_stacked_consensus_decides_after_gst(self):
        result = run_e8(quick=True, seed=2)
        assert result.summary["all_terminated"]
        assert result.summary["all_safe"]
        assert all(
            row["decision_after_gst"] is None or row["decision_after_gst"] > 0
            for row in result.rows
        )

    def test_e9_fault_envelope_erodes_termination_never_safety(self):
        result = run_e9(quick=True, seed=2)
        # Safety is unconditional: adversarial links never cause disagreement.
        assert result.summary["all_safe"]
        # Reliable-network baselines always decide.
        assert result.summary["baseline_all_decided"]
        # No HΣ quorum fits inside one block of a never-healing partition.
        assert result.summary["success_by_partition"]["permanent"] == 0.0
        # A healed partition is recovered from when the detector stabilises
        # after the heal (label growth re-broadcasts over restored links).
        assert result.summary["healing_recovered_with_late_stabilization"] == 1.0
