"""The fabric coordinator: determinism, cache interplay, crashes, resume.

These tests spawn real worker subprocesses (``python -m repro.fabric
worker``), so they use the smallest plan that still exercises every path: a
raw 8-item sweep of E1's ``_run_one`` at n=3 (a few ms per run).
"""

from __future__ import annotations

import json
from pathlib import Path

import pytest

from repro.analysis.runner import ParameterSweep
from repro.experiments.e1_ohp_convergence import _run_one as run_one_e1
from repro.fabric import execute_item, plan_experiments, plan_sweep
from repro.fabric.coordinator import Coordinator, FabricError, SimulatedCrash
from repro.runtime import Engine
from repro.runtime.cache import RunCache


@pytest.fixture
def tiny_plan():
    sweep = ParameterSweep(
        {
            "n": [3],
            "distinct_ids": [1, 3],
            "gst": [2.0],
            "delta": [0.5, 1.0],
            "fixed_timeout": [False],
        },
        repetitions=2,
        base_seed=0,
    )
    return plan_sweep(run_one_e1, sweep, name="tiny")


def _merged_bytes(result) -> bytes:
    return Path(result.merged_path).read_bytes()


def test_coordinator_merges_in_input_order(tiny_plan, tmp_path) -> None:
    """Sharded output must equal the serial engine's, row for row — and be
    identical across worker counts."""
    serial_rows = Engine().sweep(run_one_e1, [dict(i.payload["config"]) for i in tiny_plan.items])
    one = Coordinator(tiny_plan, state_dir=tmp_path / "w1", workers=1).run()
    three = Coordinator(tiny_plan, state_dir=tmp_path / "w3", workers=3).run()
    canonical = [json.loads(json.dumps(row, sort_keys=True, default=str)) for row in serial_rows]
    assert one.rows == canonical
    assert three.rows == canonical
    assert _merged_bytes(one) == _merged_bytes(three)
    assert one.stats["fresh"] == len(tiny_plan)
    assert one.digests_complete
    assert one.experiment_digests() == three.experiment_digests()


def test_coordinator_requeues_after_worker_kill(tiny_plan, tmp_path) -> None:
    """SIGKILLing a worker mid-chunk loses nothing: the chunk's unfinished
    remainder is requeued and the output stays byte-identical."""
    clean = Coordinator(tiny_plan, state_dir=tmp_path / "clean", workers=2).run()
    chaotic = Coordinator(
        tiny_plan,
        state_dir=tmp_path / "chaos",
        workers=2,
        chaos_kill_worker_after=2,
    ).run()
    assert chaotic.stats["worker_deaths"] >= 1
    assert _merged_bytes(chaotic) == _merged_bytes(clean)
    assert chaotic.experiment_digests() == clean.experiment_digests()


def test_coordinator_crash_and_resume(tiny_plan, tmp_path) -> None:
    """A coordinator killed mid-sweep resumes from its journals and converges
    to the identical merged output, executing only the missing items."""
    reference = Coordinator(tiny_plan, state_dir=tmp_path / "ref", workers=2).run()
    state = tmp_path / "crashing"
    with pytest.raises(SimulatedCrash):
        Coordinator(
            tiny_plan, state_dir=state, workers=2, crash_after_chunks=2
        ).run()
    # resume without re-passing the plan: the frozen plan.json drives it
    resumed = Coordinator(None, state_dir=state, workers=2).run()
    assert resumed.stats["from_journal"] > 0
    assert resumed.stats["dispatched"] < len(tiny_plan)
    assert _merged_bytes(resumed) == _merged_bytes(reference)
    # a second resume is a pure journal replay: nothing left to dispatch
    replay = Coordinator(None, state_dir=state, workers=2).run()
    assert replay.stats["dispatched"] == 0
    assert _merged_bytes(replay) == _merged_bytes(reference)


def test_coordinator_ignores_torn_and_foreign_journal_lines(tiny_plan, tmp_path) -> None:
    state = tmp_path / "state"
    with pytest.raises(SimulatedCrash):
        Coordinator(tiny_plan, state_dir=state, workers=1, crash_after_chunks=1).run()
    shard = next((state / "shards").glob("*.jsonl"))
    with open(shard, "a", encoding="utf-8") as handle:
        handle.write('{"index": 0, "key": "wrong-key", "row": {}}\n')  # foreign
        handle.write('{"index": 2, "row": {"tru')  # torn tail
    resumed = Coordinator(None, state_dir=state, workers=1).run()
    assert len(resumed.results) == len(tiny_plan)
    assert resumed.digests_complete


def test_state_dir_is_bound_to_one_plan(tiny_plan, tmp_path) -> None:
    state = tmp_path / "state"
    Coordinator(tiny_plan, state_dir=state, workers=1).run()
    other = plan_experiments(["E1"], quick=True, seed=0)
    with pytest.raises(FabricError, match="different plan"):
        Coordinator(other, state_dir=state, workers=1)
    with pytest.raises(FabricError, match="no plan"):
        Coordinator(None, state_dir=tmp_path / "empty")


def test_shared_cache_serves_resumed_runs(tiny_plan, tmp_path) -> None:
    """Workers populate the shared RunCache; a second fabric run over a fresh
    state dir re-executes nothing and still reproduces rows *and* digests."""
    cache = RunCache(tmp_path / "cache")
    first = Coordinator(
        tiny_plan, state_dir=tmp_path / "a", workers=2, cache=cache
    ).run()
    second = Coordinator(
        tiny_plan, state_dir=tmp_path / "b", workers=2, cache=cache
    ).run()
    assert second.stats["fabric_cache"] == len(tiny_plan)
    assert second.stats["fresh"] == 0
    assert _merged_bytes(second) == _merged_bytes(first)
    assert second.experiment_digests() == first.experiment_digests()
    assert second.digests_complete


def test_execute_item_cache_levels(tiny_plan, tmp_path) -> None:
    """In-process item execution: fresh → fabric-cache, and a plain engine
    entry (no digest record) is honoured but marked digest-incomplete."""
    cache = RunCache(tmp_path / "cache")
    item = tiny_plan.items[0]
    fresh = execute_item(item, cache)
    assert fresh.source == "fresh" and fresh.digests and fresh.digests_complete
    again = execute_item(item, cache)
    assert again.source == "fabric-cache"
    assert again.row == fresh.row and again.digests == fresh.digests
    # simulate an engine-populated cache: plain entry only, no fab envelope
    other = RunCache(tmp_path / "plain")
    other.put(item.key, dict(run_one_e1(dict(item.payload["config"]))))
    plain = execute_item(item, other)
    assert plain.source == "run-cache"
    assert plain.row == fresh.row
    assert not plain.digests_complete


def test_experiments_cli_shard_concatenation(tmp_path) -> None:
    """`--shard i/N` shards compose: cat shard1..N == the serial --jsonl."""
    from repro.experiments.__main__ import main

    serial = tmp_path / "serial.jsonl"
    assert main(["E1", "--jsonl", str(serial), "-o", str(tmp_path / "r.txt")]) == 0
    pieces = []
    for index in (1, 2, 3):
        shard = tmp_path / f"shard{index}.jsonl"
        assert main(["E1", "--shard", f"{index}/3", "--jsonl", str(shard)]) == 0
        pieces.append(shard.read_bytes())
    assert b"".join(pieces) == serial.read_bytes()


def test_stalled_worker_is_detected_and_the_run_converges(tiny_plan, tmp_path) -> None:
    """A SIGSTOPped worker must never hang the run: the per-chunk progress
    deadline detects the silence, kills the worker, requeues its chunk, and
    the merged output still matches a clean run bit for bit."""
    clean = Coordinator(tiny_plan, state_dir=tmp_path / "clean", workers=2).run()
    stalled = Coordinator(
        tiny_plan,
        state_dir=tmp_path / "stall",
        workers=2,
        progress_timeout=1.0,
        chaos_stall_worker_after=2,
    ).run()
    assert stalled.stats["stalled_workers"] >= 1
    assert stalled.stats["worker_deaths"] >= 1
    assert not stalled.partial
    assert _merged_bytes(stalled) == _merged_bytes(clean)
    assert stalled.experiment_digests() == clean.experiment_digests()


def _poison_plan():
    """4 sweep items; the config at index 1 os._exit()s the whole worker."""
    return plan_sweep(
        "tests.helpers.poison_run_one",
        [{"x": index, "poison": index == 1} for index in range(4)],
        name="poison",
    )


def test_poison_item_is_bisected_quarantined_and_reported(tmp_path) -> None:
    """One config that hard-kills its worker must not sink the sweep: after
    retries exhaust, the chunk is bisected until the poison item stands
    alone, the item is quarantined, and partial.json names it exactly."""
    state = tmp_path / "state"
    coordinator = Coordinator(
        _poison_plan(),
        state_dir=state,
        workers=1,
        max_retries=0,
        chunk_multiplier=1,
    )
    with pytest.raises(FabricError, match=r"quarantined after exhausting .*\[1\]"):
        coordinator.run()

    partial = json.loads((state / "partial.json").read_text())
    assert partial["missing_indices"] == [1]
    assert partial["plan_items"] == 4
    record = partial["items"]["1"]
    # the record tells the whole retry story: the original chunk attempt
    # plus the solo attempt after bisection, each with its cause
    assert record["attempts"] == len(record["history"]) >= 2
    assert all("attempt" in line for line in record["history"])

    # resuming with allow_partial completes every innocent neighbour and
    # merges explicitly partial — the poison index is skipped, not silent
    resumed = Coordinator(
        None, state_dir=state, workers=1, max_retries=0, allow_partial=True
    ).run()
    assert resumed.partial
    assert sorted(resumed.quarantined) == [1]
    assert resumed.stats["quarantined"] == 1
    rows = [json.loads(line) for line in _merged_bytes(resumed).decode().splitlines()]
    assert [row["x"] for row in rows] == [0, 2, 3]
    assert [row["value"] for row in rows] == [0, 4, 6]


def test_bisection_rescues_innocent_chunk_mates(tmp_path) -> None:
    """The bisection counter actually ticks, and every non-poison item's
    result survives even though they shared the poison item's chunk."""
    state = tmp_path / "state"
    coordinator = Coordinator(
        _poison_plan(),
        state_dir=state,
        workers=1,
        max_retries=0,
        chunk_multiplier=1,
        allow_partial=True,
    )
    result = coordinator.run()
    assert result.stats["bisected_chunks"] >= 1
    assert result.stats["worker_deaths"] >= 2  # original chunk + solo retry
    assert sorted(r.index for r in result.results) == [0, 2, 3]


def test_resume_survives_torn_tail_and_interleaved_foreign_lines(tiny_plan, tmp_path) -> None:
    """Journal damage in the middle of the file — not just appended at the
    end: foreign lines interleaved *between* valid results plus a torn final
    line.  The loader must keep every intact line, drop everything else, and
    the resumed run must converge to the reference bytes."""
    reference = Coordinator(tiny_plan, state_dir=tmp_path / "ref", workers=1).run()
    state = tmp_path / "state"
    with pytest.raises(SimulatedCrash):
        Coordinator(tiny_plan, state_dir=state, workers=1, crash_after_chunks=2).run()

    victim = max((state / "shards").glob("*.jsonl"), key=lambda p: p.stat().st_size)
    lines = victim.read_text(encoding="utf-8").splitlines(keepends=True)
    assert len(lines) >= 2, "need at least two journaled results to interleave"
    doctored: list[str] = []
    for line in lines[:-1]:
        doctored.append(line)
        doctored.append("this is not even JSON\n")
        doctored.append('{"index": 0, "unrelated": true}\n')
        doctored.append('{"index": 0, "key": "row-0000000000000000", "row": {}}\n')
    doctored.append(lines[-1][: len(lines[-1]) // 2])  # torn mid-line, no newline
    victim.write_text("".join(doctored), encoding="utf-8")

    resumed = Coordinator(None, state_dir=state, workers=1).run()
    assert len(resumed.results) == len(tiny_plan)
    assert resumed.stats["from_journal"] >= len(lines) - 1  # intact lines kept
    assert not resumed.partial
    assert _merged_bytes(resumed) == _merged_bytes(reference)
    assert resumed.experiment_digests() == reference.experiment_digests()
