"""Tests for the Figure 6 implementation of ◇HP / HΩ in HPS[∅] (Theorem 5, Corollary 2)."""

from __future__ import annotations

import pytest

from repro.algorithms import OhpPollingProgram
from repro.detectors import check_diamond_hp, check_homega_election
from repro.detectors.base import OutputKeys
from repro.identity import IdentityMultiset, ProcessId
from repro.membership import (
    anonymous_identities,
    grouped_identities,
    unique_identities,
)
from repro.sim import (
    CrashSchedule,
    PartiallySynchronousTiming,
    Simulation,
    build_system,
)
from repro.sim.failures import FailurePattern

KEYS = OutputKeys()


def p(index: int) -> ProcessId:
    return ProcessId(index)


def run_polling(
    membership,
    *,
    crashes=None,
    gst=15.0,
    delta=1.0,
    until=120.0,
    seed=11,
    program_kwargs=None,
):
    schedule = CrashSchedule.at_times(crashes or {})
    timing = PartiallySynchronousTiming(
        gst=gst, delta=delta, min_latency=0.1, pre_gst_loss=0.4, pre_gst_max_latency=30.0
    )
    system = build_system(
        membership=membership,
        timing=timing,
        program_factory=lambda pid, identity: OhpPollingProgram(**(program_kwargs or {})),
        crash_schedule=schedule,
        seed=seed,
    )
    simulation = Simulation(system)
    trace = simulation.run(until=until)
    return simulation, trace, FailurePattern(membership, schedule)


class TestDiamondHPConvergence:
    def test_homonymous_membership_with_crash(self):
        membership = grouped_identities([2, 2, 1])
        _, trace, pattern = run_polling(membership, crashes={p(1): 20.0})
        result = check_diamond_hp(trace, pattern)
        assert result.ok, result.violations
        assert result.stabilization_time is not None
        # Convergence can only be claimed after the crash actually happened.
        assert result.stabilization_time >= 20.0

    def test_unique_membership_no_crash(self):
        membership = unique_identities(4)
        _, trace, pattern = run_polling(membership)
        result = check_diamond_hp(trace, pattern)
        assert result.ok, result.violations

    def test_anonymous_membership(self):
        membership = anonymous_identities(4)
        _, trace, pattern = run_polling(membership, crashes={p(3): 25.0})
        result = check_diamond_hp(trace, pattern)
        assert result.ok, result.violations
        # The converged multiset is ⊥^3.
        correct_process = p(0)
        final = trace.final_value(correct_process, KEYS.H_TRUSTED)
        assert final == IdentityMultiset.uniform("⊥", 3)

    def test_multiple_crashes(self):
        membership = grouped_identities([3, 3])
        _, trace, pattern = run_polling(
            membership, crashes={p(0): 18.0, p(3): 22.0, p(4): 26.0}, until=150.0
        )
        result = check_diamond_hp(trace, pattern)
        assert result.ok, result.violations


class TestHOmegaOutput:
    def test_election_property(self):
        membership = grouped_identities([2, 2, 1])
        _, trace, pattern = run_polling(membership, crashes={p(0): 20.0})
        result = check_homega_election(trace, pattern)
        assert result.ok, result.violations

    def test_leader_is_smallest_correct_identity_with_multiplicity(self):
        membership = grouped_identities([2, 3])  # ids grp0 x2, grp1 x3
        _, trace, pattern = run_polling(membership, crashes={p(0): 20.0})
        # Correct: one grp0 process and three grp1 processes → leader grp0, mult 1.
        for process in sorted(pattern.correct):
            assert trace.final_value(process, KEYS.H_LEADER) == "grp0"
            assert trace.final_value(process, KEYS.H_MULTIPLICITY) == 1

    def test_all_leaders_crash_reelects(self):
        membership = grouped_identities([2, 2])
        # Both processes with the smallest identifier (grp0) crash.
        _, trace, pattern = run_polling(
            membership, crashes={p(0): 20.0, p(1): 24.0}, until=150.0
        )
        result = check_homega_election(trace, pattern)
        assert result.ok, result.violations
        for process in sorted(pattern.correct):
            assert trace.final_value(process, KEYS.H_LEADER) == "grp1"
            assert trace.final_value(process, KEYS.H_MULTIPLICITY) == 2


class TestAdaptiveTimeout:
    def test_timeout_grows_under_large_delta(self):
        membership = unique_identities(3)
        _, trace, pattern = run_polling(
            membership,
            gst=0.0,
            delta=4.0,
            until=200.0,
            program_kwargs={"initial_timeout": 1.0},
        )
        # The adaptive mechanism must have raised the timeout beyond its start.
        final_timeouts = [
            trace.final_value(process, "ohp.timeout") for process in membership.processes
        ]
        assert all(timeout is not None and timeout > 1.0 for timeout in final_timeouts)
        result = check_diamond_hp(trace, pattern)
        assert result.ok, result.violations

    def test_fixed_timeout_smaller_than_delta_never_converges(self):
        membership = unique_identities(3)
        _, trace, pattern = run_polling(
            membership,
            gst=0.0,
            delta=4.0,
            until=120.0,
            program_kwargs={"initial_timeout": 1.0, "fixed_timeout": True},
        )
        result = check_diamond_hp(trace, pattern)
        assert not result.ok

    def test_validation_of_parameters(self):
        with pytest.raises(ValueError):
            OhpPollingProgram(initial_timeout=0)
        with pytest.raises(ValueError):
            OhpPollingProgram(timeout_increment=-1)


class TestStackedView:
    def test_homega_view_reflects_current_state(self):
        program = OhpPollingProgram()
        view = program.homega_view()
        program.h_leader = "X"
        program.h_multiplicity = 2
        assert view.h_leader == "X"
        assert view.h_multiplicity == 2
        assert view.read() == ("X", 2)

    def test_diamond_hp_view_reflects_current_state(self):
        program = OhpPollingProgram()
        view = program.diamond_hp_view()
        program.h_trusted = IdentityMultiset(["A", "A"])
        assert view.h_trusted == IdentityMultiset(["A", "A"])
