"""The shard planner: bounds math, sweep slicing, and plan enumeration."""

from __future__ import annotations

import json

import pytest
from hypothesis import given
from hypothesis import strategies as st

from repro.analysis.runner import ParameterSweep, shard_bounds, shard_items
from repro.experiments.e1_ohp_convergence import _run_one as run_one_e1
from repro.fabric import FabricPlan, plan_experiments, plan_sweep
from repro.fabric.plan import PlanningEngine, PlanningError, WorkItem
from repro.runtime.cache import RunCache
from repro.runtime.spec import ScenarioSpec


# ---------------------------------------------------------------------------
# shard_bounds / shard_items / ParameterSweep.slice
# ---------------------------------------------------------------------------
@given(total=st.integers(0, 500), shards=st.integers(1, 20))
def test_shard_bounds_partition(total: int, shards: int) -> None:
    """The shards tile [0, total) contiguously, disjointly, and near-evenly."""
    bounds = [shard_bounds(total, shard, shards) for shard in range(shards)]
    cursor = 0
    sizes = []
    for start, end in bounds:
        assert start == cursor  # contiguous and in order: no gap, no overlap
        assert end >= start
        sizes.append(end - start)
        cursor = end
    assert cursor == total
    assert max(sizes) - min(sizes) <= 1  # balanced to within one item


def test_shard_bounds_rejects_bad_arguments() -> None:
    with pytest.raises(ValueError):
        shard_bounds(10, 0, 0)
    with pytest.raises(ValueError):
        shard_bounds(10, 3, 3)
    with pytest.raises(ValueError):
        shard_bounds(10, -1, 3)


@given(
    values=st.lists(st.integers(), max_size=60),
    shards=st.integers(1, 8),
)
def test_shard_items_union_is_order_stable(values: list[int], shards: int) -> None:
    """Concatenating the slices reproduces the input exactly (union, disjoint,
    order all in one equality)."""
    slices = [shard_items(values, shard, shards) for shard in range(shards)]
    assert [item for piece in slices for item in piece] == values


@given(repetitions=st.integers(1, 4), shards=st.integers(1, 7))
def test_parameter_sweep_slice(repetitions: int, shards: int) -> None:
    sweep = ParameterSweep(
        {"n": [3, 4], "delta": [0.5, 1.0]}, repetitions=repetitions, base_seed=7
    )
    full = list(sweep)
    slices = [sweep.slice(shard, shards) for shard in range(shards)]
    assert [config for piece in slices for config in piece] == full


# ---------------------------------------------------------------------------
# PlanningEngine / plan_experiments
# ---------------------------------------------------------------------------
def test_plan_e1_matches_serial_dispatch() -> None:
    """Quick E1 dispatches 12 sweep configs + 1 ablation = 13 items, keyed
    exactly as the run cache keys a live engine's dispatch."""
    plan = plan_experiments(["E1"], quick=True, seed=0)
    assert len(plan) == 13
    assert plan.experiments == ("E1",)
    assert [item.index for item in plan.items] == list(range(13))
    assert all(item.kind == "sweep" for item in plan.items)
    first = plan.items[0]
    assert first.key == RunCache.outcome_key(run_one_e1, first.payload["config"])


def test_full_deterministic_plan_shape() -> None:
    """Every deterministic experiment plans, and the spans are contiguous."""
    names = ["E1", "E2", "E3", "E4", "E5", "E6", "E7", "E8", "E9", "E10", "E12"]
    plan = plan_experiments(names, quick=True, seed=0)
    assert len(plan) == 187  # pinned: a dispatch-shape change must be deliberate
    spans = plan.experiment_spans()
    assert set(spans) == set(names)
    covered = sorted(index for start, end in spans.values() for index in range(start, end))
    assert covered == list(range(len(plan)))
    kinds = {name: {plan.items[i].kind for i in range(*spans[name])} for name in names}
    assert kinds["E3"] == {"map"}
    assert kinds["E10"] == {"spec"}
    assert kinds["E1"] == {"sweep"}


def test_plan_is_deterministic_and_json_round_trips(tmp_path) -> None:
    plan = plan_experiments(["E1", "E9"], quick=True, seed=3)
    again = plan_experiments(["E1", "E9"], quick=True, seed=3)
    assert plan.to_dict() == again.to_dict()
    path = plan.write(tmp_path / "plan.json")
    assert FabricPlan.read(path).to_dict() == plan.to_dict()


def test_plan_chunks_concatenate_in_order(tmp_path) -> None:
    plan = plan_experiments(["E1"], quick=True, seed=0)
    chunks = plan.chunk(4)
    assert [item.index for chunk in chunks for item in chunk] == list(range(len(plan)))
    # more chunks than items: empties are dropped, items all survive
    assert sum(len(c) for c in plan.chunk(50)) == len(plan)
    paths = plan.write_chunks(tmp_path, 4)
    assert [p.name for p in paths] == [f"chunk-{i:04d}.json" for i in range(4)]
    loaded = [
        WorkItem.from_dict(item)
        for p in paths
        for item in json.loads(p.read_text())["items"]
    ]
    assert [item.to_dict() for item in loaded] == [item.to_dict() for item in plan.items]


def test_plan_unknown_experiment_and_lambda_are_rejected() -> None:
    with pytest.raises(PlanningError, match="unknown experiment"):
        plan_experiments(["E99"])
    with pytest.raises(PlanningError, match="module-level"):
        plan_sweep(lambda config: {}, [{"seed": 0}])


def test_planning_engine_rejects_real_backend_specs() -> None:
    engine = PlanningEngine()
    spec = ScenarioSpec.from_dict(
        {
            "name": "real",
            "backend": "real",
            "membership": {"kind": "unique", "n": 3},
            "seed": 0,
        }
    )
    with pytest.raises(PlanningError, match="non-sim"):
        engine.run(spec)


def test_plan_sweep_over_raw_parameter_sweep() -> None:
    sweep = ParameterSweep({"n": [3, 4], "delta": [1.0]}, repetitions=2, base_seed=0)
    plan = plan_sweep(run_one_e1, sweep, name="raw")
    assert len(plan) == 4
    assert plan.experiments == ("raw",)
    assert all(item.payload["fn"].endswith("._run_one") for item in plan.items)
    # planning from the dotted name gives the identical plan
    named = plan_sweep(plan.items[0].payload["fn"], sweep, name="raw")
    assert named.to_dict() == plan.to_dict()
