"""The monitoring-topology layer and membership churn.

Covers the topology primitives (ring successor arithmetic at the seam,
degenerate k ≥ n, seeded gossip fanout), the spec/builder integration
(default-omission so every pre-topology canonical hash is preserved — the
same regression idiom as the kv and backend sections), the sparse heartbeat
modes end to end (including the nasty case where a victim and *all* of its
ring monitors crash together), the churn schedule validation, and the
dynamic-membership program (join via a crashed introducer, leave, down/up
recovery).
"""

from __future__ import annotations

import random

import pytest

from repro.errors import ConfigurationError
from repro.membership import DynamicMembership, Membership, random_identities
from repro.runtime import (
    Engine,
    ScenarioSpec,
    ScenarioValidationError,
    TopologySpec,
    asynchronous,
    crashes_at,
    full_mesh,
    gossip,
    ring,
    scenario,
)
from repro.sim.failures import ChurnEvent, ChurnSchedule
from repro.topology import FullMesh, Gossip, Ring, build_topology, ring_successors
from repro.workloads.churn import churn_schedule, churn_spec


# ----------------------------------------------------------------------
# Topology primitives
# ----------------------------------------------------------------------
class TestRingSuccessors:
    def test_wraparound_at_the_ring_seam(self):
        # The highest index's successors wrap to the lowest ones.
        assert ring_successors(9, [0, 2, 5, 9], 2) == (0, 2)

    def test_interior_successors_in_ring_order(self):
        assert ring_successors(2, [0, 2, 5, 9], 2) == (5, 9)

    def test_k_at_least_n_degenerates_to_full_mesh(self):
        members = [0, 1, 2, 3, 4]
        mesh = FullMesh().monitor_targets(1, members)
        assert set(ring_successors(1, members, 10)) == set(mesh)
        assert set(ring_successors(1, members, 4)) == set(mesh)

    def test_index_need_not_be_a_member(self):
        # A process whose view no longer contains itself still gets targets.
        assert ring_successors(3, [0, 5, 9], 2) == (5, 9)

    def test_self_is_never_a_target(self):
        for k in (1, 2, 5):
            assert 4 not in ring_successors(4, [0, 4, 7], k)


class TestGossipTargets:
    def test_fanout_sample_is_seeded_and_sorted(self):
        topo = Gossip(fanout=3)
        members = list(range(10))
        first = topo.gossip_targets(0, members, random.Random(42))
        second = topo.gossip_targets(0, members, random.Random(42))
        assert first == second == tuple(sorted(first))
        assert len(first) == 3 and 0 not in first

    def test_fanout_covering_all_others_skips_sampling(self):
        topo = Gossip(fanout=9)
        members = [0, 1, 2]
        assert topo.gossip_targets(0, members, random.Random(0)) == (1, 2)

    def test_monitor_targets_watch_everyone(self):
        # Gossip staleness is judged against every peer, not just the fanout.
        assert Gossip(fanout=2).monitor_targets(1, [0, 1, 2, 3]) == (0, 2, 3)


class TestTopologyConstruction:
    def test_unknown_kind_is_rejected(self):
        with pytest.raises(ConfigurationError, match="unknown"):
            build_topology("torus", {})

    def test_bad_parameters_are_rejected(self):
        with pytest.raises(ConfigurationError):
            Ring(successors=0)
        with pytest.raises(ConfigurationError):
            Gossip(fanout=0)

    def test_expected_copies_orders(self):
        assert FullMesh().expected_copies_per_round(100) == 100 * 99
        assert Ring(successors=3).expected_copies_per_round(100) == 300
        assert Gossip(fanout=3).expected_copies_per_round(100) == 300


# ----------------------------------------------------------------------
# Spec integration: the full-mesh default preserves every pre-PR hash
# ----------------------------------------------------------------------
def _hb_spec(topology=None, n: int = 5) -> ScenarioSpec:
    build = (
        scenario("topo-spec-test")
        .processes(n)
        .unique_ids()
        .timing(asynchronous(min_latency=0.01, max_latency=0.2))
        .crashes(crashes_at({n - 1: 6.0}))
        .program("heartbeat", hb_interval=1.0, hb_timeout=6.0)
        .horizon(20.0)
        .seed(3)
    )
    if topology is not None:
        build = build.topology(topology)
        build = build.check("topo_detection")
    else:
        build = build.check("hb_detection")
    return build.build()


class TestTopologySpecDefaults:
    def test_default_spec_omits_the_topology_section(self):
        payload = _hb_spec().to_dict()
        assert "topology" not in payload
        # …so canonical hashes of pre-topology specs are preserved, and the
        # round-trip still defaults correctly:
        assert ScenarioSpec.from_dict(payload).topology.is_default

    def test_explicit_full_mesh_hashes_like_the_default(self):
        implicit = _hb_spec()
        explicit = implicit.__class__.from_dict(implicit.to_dict())
        mesh = (
            scenario("topo-spec-test")
            .processes(5)
            .unique_ids()
            .timing(asynchronous(min_latency=0.01, max_latency=0.2))
            .crashes(crashes_at({4: 6.0}))
            .program("heartbeat", hb_interval=1.0, hb_timeout=6.0)
            .topology(full_mesh())
            .check("hb_detection")
            .horizon(20.0)
            .seed(3)
            .build()
        )
        assert mesh.canonical_hash() == implicit.canonical_hash() == explicit.canonical_hash()

    def test_sparse_spec_round_trips_with_hash(self):
        spec = _hb_spec(ring(successors=2))
        payload = spec.to_dict()
        assert payload["topology"] == {"kind": "ring", "params": {"successors": 2}}
        restored = ScenarioSpec.from_dict(payload)
        assert restored.canonical_hash() == spec.canonical_hash()
        assert restored.topology.build() == Ring(successors=2)

    def test_explicit_full_mesh_runs_bit_identically(self):
        default_record = Engine().run(_hb_spec())
        mesh_spec = ScenarioSpec.from_dict(
            {**_hb_spec().to_dict(), "topology": {"kind": "full_mesh", "params": {}}}
        )
        mesh_record = Engine().run(mesh_spec)
        assert mesh_record.digest == default_record.digest

    def test_topology_spec_validates_eagerly(self):
        with pytest.raises(ConfigurationError):
            TopologySpec("ring", {"successors": 0})
        with pytest.raises(ConfigurationError):
            TopologySpec("torus")


class TestBuilderValidation:
    def _sparse(self, **kwargs):
        return (
            scenario("invalid")
            .processes(5)
            .unique_ids()
            .topology(ring(successors=2))
        )

    def test_sparse_topology_requires_topology_aware_program(self):
        with pytest.raises(ScenarioValidationError, match="topology"):
            self._sparse().program("ohp_polling").horizon(10.0).build()

    def test_sparse_topology_rejects_consensus(self):
        with pytest.raises(ScenarioValidationError):
            (
                scenario("invalid")
                .processes(5)
                .distinct_ids(2)
                .topology(ring(successors=2))
                .detectors("HOmega", "HSigma", stabilization=10.0)
                .consensus("homega_majority")
                .horizon(10.0)
                .build()
            )

    def test_sparse_topology_is_sim_only(self):
        with pytest.raises(ScenarioValidationError, match="sim-only"):
            (
                scenario("invalid")
                .processes(3)
                .unique_ids()
                .timing(asynchronous(min_latency=0.005, max_latency=0.05))
                .topology(ring(successors=1))
                .program("heartbeat")
                .backend("real")
                .horizon(10.0)
                .build()
            )

    def test_membership_program_requires_a_sparse_topology(self):
        from repro.algorithms.membership import ClusterMembershipProgram

        with pytest.raises(ValueError, match="sparse"):
            ClusterMembershipProgram(hb_interval=1.0, hb_timeout=6.0)


# ----------------------------------------------------------------------
# Sparse heartbeat end to end
# ----------------------------------------------------------------------
def _detection_spec(topology, crash_indices, *, n=7, hb_timeout=6.0, seed=1):
    horizon = 10.0 + hb_timeout + 8.0
    return (
        scenario("sparse-detect")
        .processes(n)
        .unique_ids()
        .timing(asynchronous(min_latency=0.01, max_latency=0.2))
        .crashes(crashes_at({index: 10.0 for index in crash_indices}))
        .program("heartbeat", hb_interval=1.0, hb_timeout=hb_timeout)
        .topology(topology)
        .check("topo_detection")
        .horizon(horizon)
        .seed(seed)
        .build()
    )


class TestSparseDetection:
    def test_ring_detects_a_crash_without_false_suspicions(self):
        metrics = Engine().run(_detection_spec(ring(successors=2), [3])).metrics
        assert metrics["topo_detection_ok"]
        assert metrics["topo_detection_false_suspicions"] == 0
        assert metrics["topo_detection_detected"] == 1

    def test_ring_repair_covers_a_victim_whose_monitors_all_crashed(self):
        # Indices 1 and 2 are exactly the processes watching index 3 with
        # k=2 — crash all three at once.  Detection of 3 must come from a
        # survivor that adopted it as successor after declaring 1 and 2.
        metrics = Engine().run(
            _detection_spec(ring(successors=2), [1, 2, 3], hb_timeout=4.0)
        ).metrics
        assert metrics["topo_detection_ok"], metrics
        assert metrics["topo_detection_detected"] == 3
        assert metrics["topo_detection_missed"] == 0

    def test_gossip_detects_a_crash_without_false_suspicions(self):
        metrics = Engine().run(
            _detection_spec(gossip(fanout=2), [4], hb_timeout=8.0)
        ).metrics
        assert metrics["topo_detection_ok"]
        assert metrics["topo_detection_false_suspicions"] == 0

    def test_ring_runs_are_deterministic(self):
        spec = _detection_spec(ring(successors=2), [3])
        assert Engine().run(spec).digest == Engine().run(spec).digest

    def test_ring_load_at_n100_is_within_10pct_of_full_mesh(self):
        # The acceptance bar of the scaling work: Ring(successors=3) at
        # n=100 spends ≤ 10% of the full-mesh per-process budget.  The mesh
        # side is the analytic per-round count ((n−1) ping copies broadcast
        # + (n−1)² ACK copies per process) — validated empirically at small
        # n by E12 — because actually running the n=100 mesh is the cost
        # this layer exists to avoid.
        n = 100
        metrics = Engine().run(
            _detection_spec(ring(successors=3), [n - 1], n=n)
        ).metrics
        assert metrics["topo_detection_ok"]
        copies = metrics["topo_detection_copies_sent"]
        rounds = metrics["topo_detection_end_time"] / 1.0
        per_proc_round = copies / n / rounds
        mesh_per_proc_round = (n - 1) + (n - 1) ** 2
        assert per_proc_round <= 0.10 * mesh_per_proc_round


# ----------------------------------------------------------------------
# Churn schedules and ground truth
# ----------------------------------------------------------------------
class TestChurnSchedule:
    def test_join_must_be_the_first_event(self):
        with pytest.raises(ConfigurationError, match="join once, as its first"):
            ChurnSchedule(
                (
                    ChurnEvent(1, "down", 1.0),
                    ChurnEvent(1, "up", 2.0),
                    ChurnEvent(1, "join", 5.0),
                )
            )

    def test_down_twice_without_recovery_is_rejected(self):
        with pytest.raises(ConfigurationError, match="down twice"):
            ChurnSchedule((ChurnEvent(2, "down", 1.0), ChurnEvent(2, "down", 3.0)))

    def test_up_without_down_is_rejected(self):
        with pytest.raises(ConfigurationError, match="recovers"):
            ChurnSchedule((ChurnEvent(2, "up", 1.0),))

    def test_nothing_after_leave(self):
        with pytest.raises(ConfigurationError, match="after its leave"):
            ChurnSchedule((ChurnEvent(2, "leave", 1.0), ChurnEvent(2, "down", 3.0)))

    def test_round_trips_through_json_shape(self):
        original = ChurnSchedule(
            (
                ChurnEvent(5, "join", 4.0),
                ChurnEvent(1, "down", 2.0),
                ChurnEvent(1, "up", 6.0),
            )
        )
        assert ChurnSchedule.from_dict(original.to_dict()) == original
        assert original.joiners() == frozenset({5})

    def test_generator_gives_disjoint_roles_and_spares_the_introducer(self):
        schedule = churn_schedule(12, joins=2, leaves=2, flaps=2, horizon=60.0, seed=9)
        roles: dict[int, list[str]] = {}
        for event in schedule.events:
            roles.setdefault(event.index, []).append(event.kind)
        assert 0 not in roles
        assert sorted(roles) == [1, 2, 3, 4, 10, 11]
        assert schedule == churn_schedule(
            12, joins=2, leaves=2, flaps=2, horizon=60.0, seed=9
        )

    def test_generator_rejects_roles_that_do_not_fit(self):
        with pytest.raises(ValueError, match="do not fit"):
            churn_schedule(4, joins=2, leaves=2, flaps=1)


class TestDynamicMembership:
    def _ground_truth(self):
        events = ChurnSchedule(
            (
                ChurnEvent(3, "join", 10.0),
                ChurnEvent(1, "leave", 20.0),
                ChurnEvent(2, "down", 15.0),
                ChurnEvent(2, "up", 25.0),
            )
        )
        return DynamicMembership(Membership.of(["a", "b", "c", "d"]), events)

    def test_status_replay(self):
        truth = self._ground_truth()
        assert truth.status_at(3, 5.0) == "absent"
        assert truth.status_at(3, 10.0) == "active"
        assert truth.status_at(1, 19.9) == "active"
        assert truth.status_at(1, 20.0) == "left"
        assert truth.status_at(2, 16.0) == "down"
        assert truth.status_at(2, 30.0) == "active"

    def test_founders_and_members_at(self):
        truth = self._ground_truth()
        assert truth.founders() == (0, 1, 2)
        assert truth.members_at(5.0) == (0, 1, 2)
        assert truth.members_at(21.0) == (0, 2, 3)

    def test_events_beyond_the_membership_are_rejected(self):
        with pytest.raises(ConfigurationError, match="indices"):
            DynamicMembership(
                Membership.of(["a", "b"]),
                ChurnSchedule((ChurnEvent(7, "down", 1.0),)),
            )


class TestRandomIdentities:
    def test_seed_and_equivalent_rng_agree(self):
        by_seed = random_identities(6, domain_size=3, seed=11)
        by_rng = random_identities(6, domain_size=3, rng=random.Random(11))
        assert by_seed.identities == by_rng.identities

    def test_exactly_one_randomness_source_is_required(self):
        with pytest.raises(ConfigurationError, match="exactly one"):
            random_identities(4, domain_size=2)
        with pytest.raises(ConfigurationError, match="exactly one"):
            random_identities(4, domain_size=2, seed=1, rng=random.Random(1))


# ----------------------------------------------------------------------
# The membership program under churn
# ----------------------------------------------------------------------
class TestMembershipChurn:
    def test_full_churn_scenario_passes_the_check(self):
        spec = churn_spec(
            12,
            topology="ring",
            degree=3,
            joins=2,
            leaves=1,
            flaps=1,
            crashes={5: 20.0},
            hb_interval=1.0,
            hb_timeout=6.0,
            horizon=60.0,
            seed=7,
        )
        metrics = Engine().run(spec).metrics
        assert metrics["membership_churn_ok"], metrics
        assert metrics["membership_churn_joins_completed"] == 2
        assert metrics["membership_churn_leaves_announced"] == 1
        assert metrics["membership_churn_recoveries"] == 1
        assert metrics["membership_churn_removals_detected"] == 1
        assert metrics["membership_churn_false_suspicions"] == 0

    def test_join_succeeds_when_the_introducer_is_crashed(self):
        # The introducer (index 0) dies long before the join; the joiner
        # must rotate to another founder and still be welcomed.
        spec = churn_spec(
            8,
            topology="ring",
            degree=2,
            joins=1,
            crashes={0: 2.0},
            hb_interval=1.0,
            hb_timeout=6.0,
            horizon=60.0,
            seed=3,
        )
        metrics = Engine().run(spec).metrics
        assert metrics["membership_churn_ok"], metrics
        assert metrics["membership_churn_joins_completed"] == 1
        assert metrics["membership_churn_joins_failed"] == 0

    def test_gossip_churn_scenario_passes(self):
        spec = churn_spec(
            12,
            topology="gossip",
            degree=3,
            joins=1,
            leaves=1,
            flaps=1,
            crashes={5: 20.0},
            hb_interval=1.0,
            hb_timeout=8.0,
            horizon=70.0,
            seed=11,
        )
        metrics = Engine().run(spec).metrics
        assert metrics["membership_churn_ok"], metrics
        assert metrics["membership_churn_removals_detected"] == 1

    def test_churn_runs_are_deterministic(self):
        spec = churn_spec(10, topology="ring", degree=2, joins=1, flaps=1, seed=5)
        assert Engine().run(spec).digest == Engine().run(spec).digest


# ----------------------------------------------------------------------
# E12 registration
# ----------------------------------------------------------------------
def test_e12_is_registered_and_deterministic():
    from repro.experiments import ALL_EXPERIMENTS
    from repro.runtime.registry import EXPERIMENTS

    assert "E12" in ALL_EXPERIMENTS
    assert EXPERIMENTS.resolve("E12") is ALL_EXPERIMENTS["E12"]
