"""Backend portability lint: algorithm-layer code must not import the sim core.

The point of extracting :mod:`repro.context` is that detectors, consensus
algorithms, and message-passing programs are *backend-agnostic*: the same
code runs on the discrete-event simulator and on the real TCP transport.
That only stays true if those layers never reach into the simulator's
scheduler or event queue.  This test walks their ASTs and fails on any
import — absolute or relative — of ``repro.sim.scheduler`` or
``repro.sim.events``, so a backend dependency can't sneak in silently.

It also pins the protocol re-exports: ``repro.sim.process`` must re-export
the *same* objects as ``repro.context`` (identity, not copies), otherwise
programs written against one module would silently type-check against
different classes than the trampoline dispatches on.
"""

from __future__ import annotations

import ast
from pathlib import Path

import repro
from repro import context as context_module
from repro.sim import process as process_module

SRC = Path(repro.__file__).parent

#: Packages whose code must run unchanged on every backend.
PORTABLE_PACKAGES = ("detectors", "consensus", "algorithms")

#: Modules the portable layers must never import (the sim's execution core).
FORBIDDEN_MODULES = ("repro.sim.scheduler", "repro.sim.events")


def _module_name(path: Path) -> str:
    """Dotted module name of a source file under ``src/repro``."""
    relative = path.relative_to(SRC.parent)
    parts = list(relative.with_suffix("").parts)
    if parts[-1] == "__init__":
        parts.pop()
    return ".".join(parts)


def _resolve_import_from(node: ast.ImportFrom, module: str, is_package: bool) -> str:
    """Absolute dotted path a ``from ... import`` statement resolves to."""
    if node.level == 0:
        return node.module or ""
    parts = module.split(".")
    if not is_package:
        parts = parts[:-1]  # the containing package
    if node.level > 1:
        parts = parts[: len(parts) - (node.level - 1)]
    base = ".".join(parts)
    return f"{base}.{node.module}" if node.module else base


def _forbidden_imports(path: Path) -> list[str]:
    module = _module_name(path)
    tree = ast.parse(path.read_text(encoding="utf-8"), filename=str(path))
    offences = []
    for node in ast.walk(tree):
        if isinstance(node, ast.Import):
            for alias in node.names:
                if alias.name.startswith(FORBIDDEN_MODULES):
                    offences.append(f"{module}:{node.lineno} imports {alias.name}")
        elif isinstance(node, ast.ImportFrom):
            target = _resolve_import_from(node, module, path.name == "__init__.py")
            if target.startswith(FORBIDDEN_MODULES):
                offences.append(f"{module}:{node.lineno} imports from {target}")
            elif target == "repro.sim":
                # ``from ..sim import scheduler`` smuggles the same dependency.
                for alias in node.names:
                    if f"repro.sim.{alias.name}".startswith(FORBIDDEN_MODULES):
                        offences.append(
                            f"{module}:{node.lineno} imports repro.sim.{alias.name}"
                        )
    return offences


def test_portable_layers_do_not_import_the_sim_core():
    offences = []
    for package in PORTABLE_PACKAGES:
        for path in sorted((SRC / package).rglob("*.py")):
            offences.extend(_forbidden_imports(path))
    assert not offences, "backend-specific imports in portable code:\n" + "\n".join(offences)


def test_resolver_catches_relative_forms():
    """The AST resolver itself must see through every relative spelling."""
    samples = {
        "from repro.sim.scheduler import Simulation": "repro.sim.scheduler",
        "from ..sim.events import Event": "repro.sim.events",
        "from ..sim import scheduler": "repro.sim.scheduler",
        "import repro.sim.events": "repro.sim.events",
    }
    for source, expect in samples.items():
        tree = ast.parse(source)
        node = tree.body[0]
        if isinstance(node, ast.Import):
            hits = [a.name for a in node.names if a.name.startswith(FORBIDDEN_MODULES)]
            assert hits, source
        else:
            target = _resolve_import_from(node, "repro.detectors.fake", False)
            resolved = [target] + [f"{target}.{a.name}" for a in node.names]
            assert any(r.startswith(FORBIDDEN_MODULES) for r in resolved), source


def test_protocol_reexports_are_identities():
    """``repro.sim.process`` re-exports the context protocol, not copies."""
    for name in ("Sleep", "WaitUntil", "NextSyncStep", "ProcessProgram"):
        assert getattr(process_module, name) is getattr(context_module, name), name
    assert issubclass(process_module.ProcessContext, context_module.AbstractProcessContext)


def test_real_context_shares_the_protocol():
    from repro.transport.context import RealProcessContext

    assert issubclass(RealProcessContext, context_module.AbstractProcessContext)
