"""Tests for the Figure 8 consensus algorithm (HAS[t < n/2, HΩ]) and its baselines."""

from __future__ import annotations

import pytest

from repro.consensus import (
    AnonymousAOmegaConsensus,
    ClassicalOmegaConsensus,
    HOmegaMajorityConsensus,
    NoCoordinationConsensus,
    validate_consensus,
)
from repro.detectors import AOmegaOracle, HOmegaOracle, OmegaOracle
from repro.errors import ConfigurationError
from repro.identity import ProcessId
from repro.membership import (
    anonymous_identities,
    grouped_identities,
    unique_identities,
)
from repro.sim import (
    AsynchronousTiming,
    CrashEvent,
    CrashSchedule,
    Simulation,
    build_system,
)
from repro.sim.failures import FailurePattern


def p(index: int) -> ProcessId:
    return ProcessId(index)


def run_consensus(
    membership,
    program_factory,
    detectors,
    *,
    crashes=None,
    crash_schedule=None,
    until=400.0,
    seed=17,
):
    schedule = crash_schedule or CrashSchedule.at_times(crashes or {})
    system = build_system(
        membership=membership,
        timing=AsynchronousTiming(min_latency=0.1, max_latency=2.0),
        program_factory=program_factory,
        crash_schedule=schedule,
        detectors=detectors,
        seed=seed,
    )
    simulation = Simulation(system)
    trace = simulation.run(until=until, stop_when=lambda sim: sim.all_correct_decided())
    return trace, FailurePattern(membership, schedule)


def distinct_proposals(membership):
    return {process: f"value-{process.index}" for process in membership.processes}


def homega_oracle(stabilization=20.0, noise_period=5.0):
    return {
        "HOmega": lambda services: HOmegaOracle(
            services, stabilization_time=stabilization, noise_period=noise_period
        )
    }


class TestFigureEightCorrectness:
    @pytest.mark.parametrize(
        "membership_builder",
        [
            lambda: grouped_identities([2, 2, 1]),
            lambda: unique_identities(5),
            lambda: anonymous_identities(5),
            lambda: grouped_identities([3, 2]),
        ],
    )
    def test_decides_correctly_across_homonymy_patterns(self, membership_builder):
        membership = membership_builder()
        proposals = distinct_proposals(membership)
        trace, pattern = run_consensus(
            membership,
            lambda pid, identity: HOmegaMajorityConsensus(proposals[pid], n=membership.size),
            homega_oracle(),
            crashes={p(1): 10.0},
        )
        verdict = validate_consensus(trace, pattern, proposals)
        assert verdict.ok, verdict.violations

    def test_no_crash_run(self):
        membership = grouped_identities([2, 2])
        proposals = distinct_proposals(membership)
        trace, pattern = run_consensus(
            membership,
            lambda pid, identity: HOmegaMajorityConsensus(proposals[pid], n=membership.size),
            homega_oracle(stabilization=5.0),
        )
        verdict = validate_consensus(trace, pattern, proposals)
        assert verdict.ok, verdict.violations

    def test_maximum_minority_of_crashes(self):
        membership = grouped_identities([3, 2, 2])  # n = 7, t = 3
        proposals = distinct_proposals(membership)
        trace, pattern = run_consensus(
            membership,
            lambda pid, identity: HOmegaMajorityConsensus(proposals[pid], n=7, t=3),
            homega_oracle(),
            crashes={p(0): 8.0, p(3): 12.0, p(5): 16.0},
            until=600.0,
        )
        verdict = validate_consensus(trace, pattern, proposals)
        assert verdict.ok, verdict.violations

    def test_crash_during_broadcast(self):
        membership = grouped_identities([2, 2, 1])
        proposals = distinct_proposals(membership)
        schedule = CrashSchedule((CrashEvent(p(0), 6.0, partial_broadcast_fraction=0.4),))
        trace, pattern = run_consensus(
            membership,
            lambda pid, identity: HOmegaMajorityConsensus(proposals[pid], n=membership.size),
            homega_oracle(),
            crash_schedule=schedule,
        )
        verdict = validate_consensus(trace, pattern, proposals)
        assert verdict.ok, verdict.violations

    def test_identical_proposals_decide_that_value(self):
        membership = grouped_identities([2, 1])
        proposals = {process: "the-value" for process in membership.processes}
        trace, pattern = run_consensus(
            membership,
            lambda pid, identity: HOmegaMajorityConsensus("the-value", n=membership.size),
            homega_oracle(stabilization=5.0),
        )
        verdict = validate_consensus(trace, pattern, proposals)
        assert verdict.ok, verdict.violations
        assert set(verdict.decided_values.values()) == {"the-value"}

    def test_decision_value_is_a_proposal(self):
        membership = grouped_identities([2, 2, 1])
        proposals = distinct_proposals(membership)
        trace, pattern = run_consensus(
            membership,
            lambda pid, identity: HOmegaMajorityConsensus(proposals[pid], n=membership.size),
            homega_oracle(),
            crashes={p(4): 9.0},
        )
        verdict = validate_consensus(trace, pattern, proposals)
        assert verdict.ok, verdict.violations
        decided = set(verdict.decided_values.values())
        assert len(decided) == 1
        assert decided <= set(proposals.values())

    def test_different_seeds_all_correct(self):
        membership = grouped_identities([2, 2, 1])
        proposals = distinct_proposals(membership)
        for seed in (1, 2, 3, 4, 5):
            trace, pattern = run_consensus(
                membership,
                lambda pid, identity: HOmegaMajorityConsensus(proposals[pid], n=membership.size),
                homega_oracle(),
                crashes={p(2): 12.0},
                seed=seed,
            )
            verdict = validate_consensus(trace, pattern, proposals)
            assert verdict.ok, (seed, verdict.violations)

    def test_immediately_stable_detector_fast_decision(self):
        membership = grouped_identities([2, 1])
        proposals = distinct_proposals(membership)
        trace, pattern = run_consensus(
            membership,
            lambda pid, identity: HOmegaMajorityConsensus(proposals[pid], n=membership.size),
            homega_oracle(stabilization=0.0, noise_period=None),
        )
        verdict = validate_consensus(trace, pattern, proposals)
        assert verdict.ok, verdict.violations
        assert verdict.max_decision_round is not None
        assert verdict.max_decision_round <= 2


class TestFigureEightValidation:
    def test_rejects_t_at_least_half(self):
        with pytest.raises(ConfigurationError):
            HOmegaMajorityConsensus("v", n=4, t=2)

    def test_rejects_non_positive_n(self):
        with pytest.raises(ConfigurationError):
            HOmegaMajorityConsensus("v", n=0)

    def test_default_t_is_largest_minority(self):
        assert HOmegaMajorityConsensus("v", n=5).t == 2
        assert HOmegaMajorityConsensus("v", n=4).t == 1


class TestBaselines:
    def test_classical_omega_consensus_on_unique_ids(self):
        membership = unique_identities(5)
        proposals = distinct_proposals(membership)
        trace, pattern = run_consensus(
            membership,
            lambda pid, identity: ClassicalOmegaConsensus(proposals[pid], n=5),
            {"Omega": lambda s: OmegaOracle(s, stabilization_time=15.0)},
            crashes={p(1): 10.0, p(3): 14.0},
        )
        verdict = validate_consensus(trace, pattern, proposals)
        assert verdict.ok, verdict.violations

    def test_anonymous_aomega_consensus(self):
        membership = anonymous_identities(5)
        proposals = distinct_proposals(membership)
        trace, pattern = run_consensus(
            membership,
            lambda pid, identity: AnonymousAOmegaConsensus(proposals[pid], n=5),
            {"AOmega": lambda s: AOmegaOracle(s, stabilization_time=15.0)},
            crashes={p(2): 10.0},
        )
        verdict = validate_consensus(trace, pattern, proposals)
        assert verdict.ok, verdict.violations


class TestNoCoordinationAblation:
    def test_safety_is_preserved_even_without_coordination(self):
        # Removing the Leaders' Coordination Phase may cost termination, but
        # validity and agreement must still hold in every run that decides.
        membership = grouped_identities([3, 2])
        proposals = distinct_proposals(membership)
        for seed in (1, 2, 3):
            trace, pattern = run_consensus(
                membership,
                lambda pid, identity: NoCoordinationConsensus(proposals[pid], n=membership.size),
                homega_oracle(stabilization=10.0),
                crashes={p(3): 8.0},
                seed=seed,
                until=250.0,
            )
            verdict = validate_consensus(trace, pattern, proposals, require_termination=False)
            assert verdict.validity_ok and verdict.agreement_ok, verdict.violations

    def test_full_algorithm_describes_itself_differently(self):
        full = HOmegaMajorityConsensus("v", n=3)
        ablated = NoCoordinationConsensus("v", n=3)
        assert full.use_coordination_phase
        assert not ablated.use_coordination_phase
        assert full.describe() != ablated.describe()
