"""Property/edge tests for the EventQueue hot path and the determinism digest.

Covers the PR-3 hot-path overhaul: batched same-tick scheduling, event
recycling, live-count invariants under adversarial interleavings, and the
always-on determinism digest (including serial vs parallel equality).
"""

from __future__ import annotations

import random

import pytest

from repro.errors import SchedulingError
from repro.membership import grouped_identities
from repro.runtime import Engine, ParallelExecutor, RunRecord, minority, scenario
from repro.sim import (
    EventQueue,
    Simulation,
    SynchronousTiming,
    build_system,
)
from repro.sim.events import KIND_DELIVERY


def _drain_order(queue: EventQueue) -> list:
    fired = []
    while (event := queue.pop_next()) is not None:
        event.run()
        fired.append(event.sequence)
    return fired


def _spec(seed: int = 0):
    return (
        scenario("digest-test")
        .processes(4)
        .distinct_ids(2)
        .crashes(minority(at=6.0, count=1))
        .detectors("HOmega", "HSigma", stabilization=10.0)
        .consensus("homega_majority")
        .horizon(300.0)
        .seed(seed)
        .build()
    )


class TestQueueEdgeCases:
    def test_cancel_then_pop_skips_and_counts(self):
        queue = EventQueue()
        fired: list[str] = []
        first = queue.schedule(1.0, lambda: fired.append("a"))
        queue.schedule(2.0, lambda: fired.append("b"))
        queue.cancel(first)
        assert len(queue) == 1
        while (event := queue.pop_next()) is not None:
            event.run()
        assert fired == ["b"]
        assert queue.is_empty()

    def test_pop_then_cancel_stale_handle_is_harmless(self):
        queue = EventQueue()
        stale = queue.schedule(1.0, lambda: None)
        queue.schedule(2.0, lambda: None)
        assert queue.pop_next() is stale
        queue.cancel(stale)
        queue.cancel(stale)
        assert len(queue) == 1
        assert queue.peek_time() == 2.0

    def test_peek_time_skips_runs_of_cancelled_heads(self):
        queue = EventQueue()
        doomed = [queue.schedule(float(t), lambda: None) for t in (1, 2, 3)]
        queue.schedule(4.0, lambda: None)
        for event in doomed:
            queue.cancel(event)
        assert queue.peek_time() == 4.0
        assert len(queue) == 1

    def test_note_cancellation_without_live_event_raises(self):
        queue = EventQueue()
        with pytest.warns(DeprecationWarning):
            with pytest.raises(SchedulingError):
                queue.note_cancellation()

    def test_len_invariant_under_randomized_interleavings(self):
        rng = random.Random(1234)
        for _ in range(30):
            queue = EventQueue()
            live_handles = []
            expected_live = 0
            for _ in range(200):
                roll = rng.random()
                if roll < 0.5:
                    handle = queue.schedule(rng.uniform(0.0, 50.0), lambda: None)
                    live_handles.append(handle)
                    expected_live += 1
                elif roll < 0.75 and live_handles:
                    victim = live_handles.pop(rng.randrange(len(live_handles)))
                    queue.cancel(victim)
                    queue.cancel(victim)  # idempotent
                    expected_live -= 1
                else:
                    event = queue.pop_next()
                    if event is not None:
                        expected_live -= 1
                        if event in live_handles:
                            live_handles.remove(event)
                        queue.cancel(event)  # stale-handle cancel is a no-op
                assert len(queue) == expected_live
            # Draining the rest must fire exactly the remaining live events.
            assert len(_drain_order(queue)) == expected_live
            assert queue.is_empty()

    def test_pop_until_leaves_later_events_in_place(self):
        queue = EventQueue()
        queue.schedule(1.0, lambda: None)
        queue.schedule(5.0, lambda: None)
        assert queue.pop_next(until=2.0) is not None
        assert queue.pop_next(until=2.0) is None
        assert len(queue) == 1
        assert queue.peek_time() == 5.0


class TestBatchScheduling:
    def test_batch_matches_individual_scheduling_exactly(self):
        """One batch must be indistinguishable from n schedule() calls —
        same dispatch order, same sequences, same digest."""
        fired_a: list[str] = []
        individual = EventQueue()
        for name in ("x", "y", "z"):
            individual.schedule(2.0, fired_a.append, args=(name,), priority=1, kind=KIND_DELIVERY)
        order_a = _drain_order(individual)

        fired_b: list[str] = []
        batched = EventQueue()
        batched.schedule_batch(
            2.0,
            [lambda n="x": fired_b.append(n), lambda n="y": fired_b.append(n),
             lambda n="z": fired_b.append(n)],
            priority=1,
            kind=KIND_DELIVERY,
        )
        order_b = _drain_order(batched)

        assert fired_a == fired_b == ["x", "y", "z"]
        assert order_a == order_b
        assert individual.digest == batched.digest

    def test_batch_counts_as_n_live_events(self):
        queue = EventQueue()
        queue.schedule_batch(1.0, [lambda: None] * 4)
        assert len(queue) == 4
        queue.pop_next()
        assert len(queue) == 3
        assert queue.peek_time() == 1.0
        _drain_order(queue)
        assert queue.is_empty()

    def test_heap_event_interleaves_into_a_draining_batch(self):
        """An event scheduled mid-drain with a smaller sequence-free key
        (lower priority number at the same time) must run before the
        remaining batch entries."""
        queue = EventQueue()
        fired: list[str] = []
        queue.schedule_batch(
            1.0, [lambda: fired.append("b1"), lambda: fired.append("b2")], priority=1
        )
        first = queue.pop_next()
        first.run()
        # Scheduled after the batch, but priority 0 beats priority 1 at t=1.
        queue.schedule(1.0, lambda: fired.append("urgent"), priority=0)
        while (event := queue.pop_next()) is not None:
            event.run()
        assert fired == ["b1", "urgent", "b2"]

    def test_two_batches_drain_in_global_order(self):
        queue = EventQueue()
        fired: list[str] = []
        queue.schedule_batch(
            5.0, [lambda: fired.append("late1"), lambda: fired.append("late2")]
        )
        served = queue.pop_next()
        served.run()  # late1; the late batch is now draining
        queue.schedule_batch(
            5.0, [lambda: fired.append("tail1"), lambda: fired.append("tail2")]
        )
        while (event := queue.pop_next()) is not None:
            event.run()
        assert fired == ["late1", "late2", "tail1", "tail2"]

    def test_batch_handles_cannot_be_cancelled(self):
        queue = EventQueue()
        handle = queue.schedule_batch(1.0, [lambda: None, lambda: None])
        with pytest.raises(SchedulingError):
            queue.cancel(handle)

    def test_empty_batch_is_rejected(self):
        queue = EventQueue()
        with pytest.raises(SchedulingError):
            queue.schedule_batch(1.0, [])

    def test_single_action_batch_degenerates_to_schedule(self):
        queue = EventQueue()
        handle = queue.schedule_batch(1.0, [lambda: None])
        assert handle.batch is None
        queue.cancel(handle)  # plain events stay cancellable
        assert queue.is_empty()


class TestRecycling:
    def test_recycled_event_is_reused_without_changing_behaviour(self):
        queue = EventQueue()
        fired: list[int] = []
        event = queue.schedule(1.0, fired.append, args=(1,), kind=KIND_DELIVERY)
        popped = queue.pop_next()
        assert popped is event
        popped.run()
        queue.recycle(popped)
        reused = queue.schedule(2.0, fired.append, args=(2,), kind=KIND_DELIVERY)
        assert reused is event  # same object, fresh identity
        assert reused.cancelled is False and reused.popped is False
        queue.pop_next().run()
        assert fired == [1, 2]

    def test_live_or_cancelled_events_are_not_pooled(self):
        queue = EventQueue()
        live = queue.schedule(1.0, lambda: None)
        queue.recycle(live)  # not popped: refused
        cancelled = queue.schedule(2.0, lambda: None)
        queue.cancel(cancelled)
        queue.recycle(cancelled)  # cancelled: refused
        fresh = queue.schedule(3.0, lambda: None)
        assert fresh is not live and fresh is not cancelled


class TestDeterminismDigest:
    def test_same_seed_same_digest(self):
        records = [Engine().run(_spec(seed=7)) for _ in range(2)]
        assert records[0].digest == records[1].digest != ""
        assert records[0].metrics == records[1].metrics

    def test_different_seeds_different_digests(self):
        assert Engine().run(_spec(seed=1)).digest != Engine().run(_spec(seed=2)).digest

    def test_serial_and_parallel_runs_have_equal_digests(self):
        specs = [_spec(seed=s) for s in range(4)]
        serial = Engine().run_many(specs)
        parallel = Engine(ParallelExecutor(2)).run_many(specs)
        assert [r.digest for r in serial] == [r.digest for r in parallel]
        assert serial == parallel

    def test_digest_survives_record_round_trip(self):
        record = Engine().run(_spec(seed=3))
        assert RunRecord.from_dict(record.to_dict()) == record
        assert record.to_dict()["digest"] == record.digest

    def test_synchronous_batched_broadcast_is_digest_stable(self):
        """The HSS batched-broadcast fast path must be deterministic too."""
        from repro.detectors.probe import DetectorProbeProgram, hsigma_probes
        from repro.detectors import HSigmaOracle

        def run_once():
            membership = grouped_identities([2, 2])
            system = build_system(
                membership=membership,
                timing=SynchronousTiming(step=1.0),
                program_factory=lambda pid, identity: DetectorProbeProgram(
                    hsigma_probes(), period=1.0
                ),
                detectors={"HSigma": lambda s: HSigmaOracle(s, stabilization_time=5.0)},
                seed=11,
            )
            simulation = Simulation(system)
            simulation.run(until=20.0)
            return simulation.digest

        assert run_once() == run_once()
