"""Real-backend integration tests (marked ``transport``, excluded from tier-1).

These spawn actual node subprocesses over TCP, so they cost seconds of wall
clock and are inherently timing-dependent; run them explicitly with
``pytest -m transport``.  The conftest SIGALRM hook bounds each test hard.
"""

from __future__ import annotations

import json

import pytest

from repro.runtime import Engine
from repro.transport.__main__ import build_heartbeat_spec
from repro.transport.events import read_events

pytestmark = pytest.mark.transport

_HB_INTERVAL = 1.0
_HB_TIMEOUT = 3.0
_FAIL_AT = 6.0


def test_real_three_node_run_detects_the_victim(tmp_path):
    log_dir = tmp_path / "logs"
    spec = build_heartbeat_spec(
        nodes=3,
        hb_interval=_HB_INTERVAL,
        hb_timeout=_HB_TIMEOUT,
        fail_at=_FAIL_AT,
        backend="real",
        log_dir=str(log_dir),
    )
    record = Engine().run(spec)
    metrics = record.metrics

    assert metrics["backend"] == "real"
    assert metrics["hb_detection_ok"] is True
    assert metrics["hb_missed"] == 0

    # detection latency is positive and on the order of hb_timeout:
    # the Snippet 1 §5 envelope, [timeout − interval, timeout + interval]
    latency = metrics["hb_detection_time"]
    assert _HB_TIMEOUT - _HB_INTERVAL <= latency <= _HB_TIMEOUT + _HB_INTERVAL

    # t_fail sits on the shared monotonic base, near the scheduled time
    (t_fail,) = metrics["t_fail"].values()
    assert t_fail == pytest.approx(_FAIL_AT, abs=0.5)

    # every node produced a JSONL log; the victim's stops early
    for index in range(3):
        path = log_dir / f"node{index}.jsonl"
        assert path.exists(), path
        events = list(read_events(path))
        assert events and all("t_wall" in e and "t" in e for e in events)
    assert (log_dir / "injector.jsonl").exists()

    # the two observers each declared the victim dead exactly once
    first_line = json.loads((log_dir / "node2.jsonl").read_text().split("\n", 1)[0])
    victim = first_line["node"]["identity"]
    declarations = [
        entry
        for index in (0, 1)
        for entry in read_events(log_dir / f"node{index}.jsonl")
        if entry["event"] == "declared_dead"
    ]
    assert len(declarations) == 2
    assert all(entry["value"] == victim for entry in declarations)
    assert all(entry["t"] > t_fail for entry in declarations)


def test_real_run_records_are_not_cached(tmp_path):
    cache_dir = tmp_path / "cache"
    spec = build_heartbeat_spec(backend="real")
    engine = Engine(cache=str(cache_dir))
    first = engine.run(spec)
    second = engine.run(spec)
    # two real runs measure two different wall-clock samples — the engine
    # must not replay the first one from the cache
    assert first.metrics["hb_detection_time"] != second.metrics["hb_detection_time"]


def test_stillborn_run_reaps_nodes_and_removes_temp_dir(tmp_path, monkeypatch):
    """A run that dies before ready (here: an impossible ready_timeout) must
    leave nothing behind: no node subprocess, no temporary log directory."""
    import dataclasses
    import tempfile

    from repro.chaos.soak import _child_pids
    from repro.transport.orchestrator import execute_real_spec

    tmp_root = tmp_path / "tmp"
    tmp_root.mkdir()
    monkeypatch.setattr(tempfile, "tempdir", str(tmp_root))
    spec = build_heartbeat_spec(nodes=3, backend="real")
    spec = dataclasses.replace(spec, backend_params={"ready_timeout": 0.01})
    before = _child_pids()
    with pytest.raises(RuntimeError, match="ready_timeout"):
        execute_real_spec(spec)
    assert _child_pids() - before == set()  # every spawned node was reaped
    assert list(tmp_root.iterdir()) == []  # the temp log dir did not leak


def test_mid_run_interrupt_reaps_nodes_and_removes_temp_dir(tmp_path, monkeypatch):
    """SIGINT lands as KeyboardInterrupt mid-run (after the fleet is up and
    meshed); the finally path must still kill the nodes, close the logs, and
    remove the temporary directory."""
    import tempfile

    import repro.transport.orchestrator as orchestrator
    from repro.chaos.soak import _child_pids

    def interrupted(plan):
        raise KeyboardInterrupt

    monkeypatch.setattr(orchestrator, "_injection_timeline", interrupted)
    tmp_root = tmp_path / "tmp"
    tmp_root.mkdir()
    monkeypatch.setattr(tempfile, "tempdir", str(tmp_root))
    spec = build_heartbeat_spec(nodes=3, backend="real")
    before = _child_pids()
    with pytest.raises(KeyboardInterrupt):
        orchestrator.execute_real_spec(spec)
    assert _child_pids() - before == set()
    assert list(tmp_root.iterdir()) == []
