"""Tests for the Engine, executors, RunRecord, and ParameterSweep polish."""

from __future__ import annotations

import json

import pytest

from repro.analysis.runner import ParameterSweep
from repro.experiments.common import run_consensus_once
from repro.membership import grouped_identities
from repro.runtime import (
    Engine,
    ParallelExecutor,
    RunRecord,
    ScenarioSpec,
    SerialExecutor,
    WorkerPool,
    cascading,
    execute_spec,
    executor_for,
    minority,
    scenario,
)
from repro.workloads.crashes import minority_crashes


def small_spec(seed: int = 0) -> ScenarioSpec:
    return (
        scenario("engine-test")
        .processes(4)
        .distinct_ids(2)
        .crashes(minority(at=6.0, count=1))
        .detectors("HOmega", "HSigma", stabilization=10.0)
        .consensus("homega_majority")
        .horizon(300.0)
        .seed(seed)
        .build()
    )


def _double(config: dict) -> dict:
    return {"doubled": config["x"] * 2}


class TestExecutors:
    def test_executor_for_picks_the_right_kind(self):
        assert isinstance(executor_for(None), SerialExecutor)
        assert isinstance(executor_for(1), SerialExecutor)
        assert isinstance(executor_for(2), WorkerPool)
        assert isinstance(executor_for(2, pool="cold"), ParallelExecutor)
        assert isinstance(executor_for(1, pool="cold"), SerialExecutor)

    def test_parallel_executor_rejects_nonpositive_jobs(self):
        with pytest.raises(Exception):
            ParallelExecutor(0)

    def test_parallel_map_preserves_input_order(self):
        items = [{"x": value} for value in range(20)]
        results = ParallelExecutor(2).map(_double, items)
        assert [row["doubled"] for row in results] == [2 * value for value in range(20)]


class TestEngine:
    def test_serial_and_parallel_records_are_identical(self):
        specs = [small_spec(seed) for seed in range(6)]
        serial = Engine().run_many(specs)
        parallel = Engine(jobs=2).run_many(specs)
        assert serial == parallel
        assert all(record.metrics["safe"] for record in serial)

    def test_sweep_rows_identical_serial_vs_parallel(self):
        sweep = ParameterSweep({"x": [1, 2, 3, 4]}, repetitions=2)
        serial_rows = Engine().sweep(_double, sweep)
        parallel_rows = Engine(jobs=2).sweep(_double, sweep)
        assert serial_rows == parallel_rows
        assert serial_rows[0] == {"x": 1, "seed": 0, "doubled": 2}
        assert "repetition" not in serial_rows[0]

    def test_run_sweep_builds_specs_from_configs(self):
        sweep = ParameterSweep({"n": [4]}, repetitions=2)
        rows = Engine().run_sweep(lambda config: small_spec(config["seed"]), sweep)
        assert len(rows) == 2
        assert all(row["decided"] for row in rows)
        assert {row["seed"] for row in rows} == {0, 1}

    def test_jsonl_emission(self, tmp_path):
        log = tmp_path / "runs.jsonl"
        record = Engine(jsonl_path=str(log)).run(small_spec())
        lines = [json.loads(line) for line in log.read_text().splitlines()]
        assert len(lines) == 1
        assert lines[0]["scenario"] == "engine-test"
        assert lines[0]["metrics"]["decided"] == record.metrics["decided"]

    def test_engine_rejects_executor_and_jobs_together(self):
        with pytest.raises(ValueError):
            Engine(SerialExecutor(), jobs=2)


class TestRunRecord:
    def test_round_trip(self):
        record = execute_spec(small_spec(3))
        assert RunRecord.from_dict(record.to_dict()) == record
        assert record.seed == 3
        assert record.config == small_spec(3).to_dict()

    def test_row_flattens_scalars_and_metrics(self):
        record = RunRecord(
            scenario="s", seed=1, config={"n": 5, "nested": {"drop": 1}}, metrics={"ok": True}
        )
        assert record.row() == {"n": 5, "ok": True}


class TestLegacyShim:
    def test_run_consensus_once_matches_engine_record(self):
        membership = grouped_identities([2, 1, 1])
        crash_schedule = minority_crashes(membership, at=6.0, count=1)
        from repro.consensus import HOmegaMajorityConsensus

        with pytest.deprecated_call():
            row = run_consensus_once(
                membership,
                lambda proposal: HOmegaMajorityConsensus(proposal, n=membership.size),
                crash_schedule=crash_schedule,
                detector_stabilization=10.0,
                horizon=300.0,
                seed=0,
            )
        # The declarative equivalent of the legacy call must measure the same run.
        spec = (
            scenario("legacy-equivalent")
            .homonyms([2, 1, 1])
            .crashes(minority(at=6.0, count=1))
            .detectors("HOmega", "HSigma", stabilization=10.0)
            .consensus("homega_majority")
            .horizon(300.0)
            .seed(0)
            .build()
        )
        record = execute_spec(spec)
        assert row == dict(record.metrics)


class TestParameterSweepPolish:
    def test_len_and_total_runs(self):
        sweep = ParameterSweep({"a": [1, 2, 3], "b": [True, False]}, repetitions=4)
        assert sweep.total_runs == 24
        assert len(sweep) == 24
        assert len(list(sweep)) == 24

    def test_empty_parameter_space_counts_repetitions(self):
        sweep = ParameterSweep({}, repetitions=3)
        assert len(sweep) == 3

    def test_seed_spacing_never_collides(self):
        """Regression: combo/repetition seed formula assigns unique seeds."""
        sweep = ParameterSweep(
            {"a": list(range(7)), "b": list(range(5)), "c": [True, False]},
            repetitions=9,
            base_seed=123,
        )
        seeds = [config["seed"] for config in sweep]
        assert len(seeds) == sweep.total_runs
        assert len(set(seeds)) == len(seeds)
        # Seeds form a contiguous block, so sweeps with disjoint base seeds
        # spaced by total_runs never overlap either.
        assert min(seeds) == 123
        assert max(seeds) == 123 + sweep.total_runs - 1

    def test_run_with_executor_matches_plain_run(self):
        sweep = ParameterSweep({"x": [1, 2, 3]}, repetitions=2)
        assert sweep.run(_double) == sweep.run(_double, executor=ParallelExecutor(2))
