"""Tests for the clock, event queue, and RNG streams."""

from __future__ import annotations

import pytest

from repro.errors import SchedulingError
from repro.sim.clock import Clock
from repro.sim.events import EventQueue
from repro.sim.rng import RngStreams


class TestClock:
    def test_starts_at_zero(self):
        assert Clock().now == 0.0

    def test_advances(self):
        clock = Clock()
        clock.advance_to(3.5)
        assert clock.now == 3.5

    def test_cannot_move_backwards(self):
        clock = Clock(start=5)
        with pytest.raises(ValueError):
            clock.advance_to(4.9)

    def test_cannot_start_negative(self):
        with pytest.raises(ValueError):
            Clock(start=-1)


class TestEventQueue:
    def test_orders_by_time(self):
        queue = EventQueue()
        order: list[str] = []
        queue.schedule(2.0, lambda: order.append("late"))
        queue.schedule(1.0, lambda: order.append("early"))
        while (event := queue.pop_next()) is not None:
            event.action()
        assert order == ["early", "late"]

    def test_same_time_orders_by_priority_then_fifo(self):
        queue = EventQueue()
        order: list[str] = []
        queue.schedule(1.0, lambda: order.append("a"), priority=1)
        queue.schedule(1.0, lambda: order.append("b"), priority=0)
        queue.schedule(1.0, lambda: order.append("c"), priority=1)
        while (event := queue.pop_next()) is not None:
            event.action()
        assert order == ["b", "a", "c"]

    def test_cancellation_skips_event(self):
        queue = EventQueue()
        fired: list[str] = []
        event = queue.schedule(1.0, lambda: fired.append("x"))
        queue.cancel(event)
        assert queue.is_empty()
        assert queue.pop_next() is None
        assert fired == []

    def test_cancel_is_idempotent(self):
        queue = EventQueue()
        event = queue.schedule(1.0, lambda: None)
        queue.schedule(2.0, lambda: None)
        queue.cancel(event)
        queue.cancel(event)
        assert len(queue) == 1

    def test_deprecated_split_cancellation_still_works_but_warns(self):
        queue = EventQueue()
        event = queue.schedule(1.0, lambda: None)
        with pytest.warns(DeprecationWarning):
            event.cancel()
        with pytest.warns(DeprecationWarning):
            queue.note_cancellation()
        assert queue.is_empty()

    def test_cancelling_a_popped_handle_does_not_corrupt_the_count(self):
        queue = EventQueue()
        stale = queue.schedule(1.0, lambda: None)
        queue.schedule(2.0, lambda: None)
        assert queue.pop_next() is stale
        queue.cancel(stale)
        assert len(queue) == 1
        assert queue.peek_time() == 2.0

    def test_event_args_are_passed_to_the_action(self):
        queue = EventQueue()
        received: list[tuple] = []
        queue.schedule(1.0, lambda *args: received.append(args), args=("m", 2))
        queue.pop_next().run()
        assert received == [("m", 2)]

    def test_peek_time(self):
        queue = EventQueue()
        assert queue.peek_time() is None
        queue.schedule(4.0, lambda: None)
        queue.schedule(2.0, lambda: None)
        assert queue.peek_time() == 2.0

    def test_peek_skips_cancelled(self):
        queue = EventQueue()
        first = queue.schedule(1.0, lambda: None)
        queue.schedule(2.0, lambda: None)
        queue.cancel(first)
        assert queue.peek_time() == 2.0

    def test_rejects_negative_time(self):
        queue = EventQueue()
        with pytest.raises(SchedulingError):
            queue.schedule(-1.0, lambda: None)

    def test_rejects_scheduling_in_the_past(self):
        queue = EventQueue()
        with pytest.raises(SchedulingError):
            queue.schedule(1.0, lambda: None, not_before=2.0)

    def test_len_tracks_live_events(self):
        queue = EventQueue()
        queue.schedule(1.0, lambda: None)
        queue.schedule(2.0, lambda: None)
        assert len(queue) == 2
        queue.pop_next()
        assert len(queue) == 1


class TestRngStreams:
    def test_same_seed_same_draws(self):
        first = RngStreams(42).stream("latency")
        second = RngStreams(42).stream("latency")
        assert [first.random() for _ in range(5)] == [second.random() for _ in range(5)]

    def test_different_streams_are_independent(self):
        streams = RngStreams(42)
        a = streams.stream("a")
        b = streams.stream("b")
        assert [a.random() for _ in range(3)] != [b.random() for _ in range(3)]

    def test_stream_is_cached(self):
        streams = RngStreams(1)
        assert streams.stream("x") is streams.stream("x")

    def test_spawn_derives_new_space(self):
        parent = RngStreams(7)
        child_one = parent.spawn("exp")
        child_two = parent.spawn("exp")
        assert child_one.master_seed == child_two.master_seed
        assert child_one.master_seed != parent.master_seed

    def test_master_seed_exposed(self):
        assert RngStreams(9).master_seed == 9
