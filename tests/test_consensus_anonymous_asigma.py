"""Tests for the anonymous AΩ + AΣ consensus variant (§5.3 closing remark)."""

from __future__ import annotations

import pytest

from repro.consensus import AnonymousAOmegaASigmaConsensus, validate_consensus
from repro.detectors import AOmegaOracle, ASigmaOracle
from repro.identity import ProcessId
from repro.membership import anonymous_identities
from repro.sim import AsynchronousTiming, CrashSchedule, Simulation, build_system
from repro.sim.failures import FailurePattern


def p(index: int) -> ProcessId:
    return ProcessId(index)


def run_anonymous_consensus(n=5, *, crashes=None, seed=41, stabilization=20.0, until=500.0):
    membership = anonymous_identities(n)
    proposals = {process: f"value-{process.index}" for process in membership.processes}
    schedule = CrashSchedule.at_times(crashes or {})
    detectors = {
        "AOmega": lambda services: AOmegaOracle(
            services, stabilization_time=stabilization, noise_period=5.0
        ),
        "ASigma": lambda services: ASigmaOracle(
            services, stabilization_time=stabilization
        ),
    }
    system = build_system(
        membership=membership,
        timing=AsynchronousTiming(min_latency=0.1, max_latency=2.0),
        program_factory=lambda pid, identity: AnonymousAOmegaASigmaConsensus(proposals[pid]),
        crash_schedule=schedule,
        detectors=detectors,
        seed=seed,
    )
    simulation = Simulation(system)
    trace = simulation.run(until=until, stop_when=lambda sim: sim.all_correct_decided())
    return trace, FailurePattern(membership, schedule), proposals


class TestAnonymousAOmegaASigma:
    def test_no_crash(self):
        trace, pattern, proposals = run_anonymous_consensus()
        verdict = validate_consensus(trace, pattern, proposals)
        assert verdict.ok, verdict.violations

    def test_single_crash(self):
        trace, pattern, proposals = run_anonymous_consensus(crashes={p(2): 10.0})
        verdict = validate_consensus(trace, pattern, proposals)
        assert verdict.ok, verdict.violations

    def test_minority_correct(self):
        # AΩ + AΣ tolerates any number of crashes, like Figure 9.
        trace, pattern, proposals = run_anonymous_consensus(
            crashes={p(1): 8.0, p(2): 12.0, p(3): 16.0}, until=700.0
        )
        verdict = validate_consensus(trace, pattern, proposals)
        assert verdict.ok, verdict.violations

    def test_multiple_seeds(self):
        for seed in (1, 2, 3):
            trace, pattern, proposals = run_anonymous_consensus(
                crashes={p(4): 9.0}, seed=seed
            )
            verdict = validate_consensus(trace, pattern, proposals)
            assert verdict.ok, (seed, verdict.violations)

    def test_decided_value_is_a_proposal(self):
        trace, pattern, proposals = run_anonymous_consensus(crashes={p(0): 10.0})
        verdict = validate_consensus(trace, pattern, proposals)
        assert set(verdict.decided_values.values()) <= set(proposals.values())

    def test_describe(self):
        program = AnonymousAOmegaASigmaConsensus("v")
        assert "AΩ" in program.describe() or "anonymous" in program.describe()
