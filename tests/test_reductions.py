"""Tests for the failure-detector reductions (Section 3.3 of the paper)."""

from __future__ import annotations

import pytest

from repro.detectors import (
    APOracle,
    ASigmaOracle,
    DiamondHPOracle,
    HSigmaOracle,
    ScriptEOracle,
    SigmaOracle,
    check_diamond_hp,
    check_homega_election,
    check_hsigma,
    check_sigma,
)
from repro.detectors.classes import DetectorClass
from repro.errors import ReductionError
from repro.identity import ProcessId
from repro.membership import anonymous_identities, grouped_identities, unique_identities
from repro.reductions import (
    APToDiamondHP,
    APToHSigma,
    ASigmaToHSigma,
    DiamondHPToHOmega,
    HSigmaToSigma,
    SigmaToHSigmaUnknownMembership,
    SigmaToHSigmaWithMembership,
    equivalent_classes,
    is_stronger,
    paper_relations,
    relation_graph,
)
from repro.sim import AsynchronousTiming, CrashSchedule, Simulation, build_system
from repro.sim.failures import FailurePattern


def p(index: int) -> ProcessId:
    return ProcessId(index)


def run_reduction(
    membership,
    program_factory,
    detectors,
    *,
    crashes=None,
    until=80.0,
    seed=21,
    stabilization=15.0,
):
    schedule = CrashSchedule.at_times(crashes or {})
    system = build_system(
        membership=membership,
        timing=AsynchronousTiming(min_latency=0.1, max_latency=1.5),
        program_factory=program_factory,
        crash_schedule=schedule,
        detectors=detectors,
        seed=seed,
    )
    simulation = Simulation(system)
    trace = simulation.run(until=until)
    return trace, FailurePattern(membership, schedule)


CRASH = {p(1): 10.0}


class TestSigmaToHSigma:
    def test_figure1_with_membership_knowledge(self):
        membership = unique_identities(4)
        identities = membership.identity_multiset()
        trace, pattern = run_reduction(
            membership,
            lambda pid, identity: SigmaToHSigmaWithMembership(identities, period=1.0),
            {"Sigma": lambda s: SigmaOracle(s, stabilization_time=15.0)},
            crashes=CRASH,
        )
        result = check_hsigma(trace, pattern)
        assert result.ok, result.violations

    def test_figure2_without_membership_knowledge(self):
        membership = unique_identities(4)
        trace, pattern = run_reduction(
            membership,
            lambda pid, identity: SigmaToHSigmaUnknownMembership(period=1.0),
            {"Sigma": lambda s: SigmaOracle(s, stabilization_time=15.0)},
            crashes=CRASH,
        )
        result = check_hsigma(trace, pattern)
        assert result.ok, result.violations

    def test_figure1_rejects_homonymous_membership(self, paper_example_membership):
        with pytest.raises(ReductionError):
            SigmaToHSigmaWithMembership(paper_example_membership.identity_multiset())


class TestHSigmaToSigma:
    def test_emulated_sigma_satisfies_class_properties(self):
        membership = unique_identities(4)
        trace, pattern = run_reduction(
            membership,
            lambda pid, identity: HSigmaToSigma(period=1.0),
            {
                "HSigma": lambda s: HSigmaOracle(s, stabilization_time=15.0),
                "ScriptE": lambda s: ScriptEOracle(s, stabilization_time=15.0),
            },
            crashes=CRASH,
            until=100.0,
        )
        result = check_sigma(trace, pattern)
        assert result.ok, result.violations

    def test_more_failures_than_majority(self):
        # Σ emulated from HΣ works regardless of the number of crashes.
        membership = unique_identities(5)
        trace, pattern = run_reduction(
            membership,
            lambda pid, identity: HSigmaToSigma(period=1.0),
            {
                "HSigma": lambda s: HSigmaOracle(s, stabilization_time=20.0),
                "ScriptE": lambda s: ScriptEOracle(s, stabilization_time=20.0),
            },
            crashes={p(1): 8.0, p(2): 10.0, p(3): 12.0},
            until=120.0,
        )
        result = check_sigma(trace, pattern)
        assert result.ok, result.violations


class TestAnonymousReductions:
    def test_asigma_to_hsigma(self):
        membership = anonymous_identities(4)
        trace, pattern = run_reduction(
            membership,
            lambda pid, identity: ASigmaToHSigma(period=1.0),
            {"ASigma": lambda s: ASigmaOracle(s, stabilization_time=15.0)},
            crashes=CRASH,
        )
        result = check_hsigma(trace, pattern)
        assert result.ok, result.violations

    def test_ap_to_diamond_hp(self):
        membership = anonymous_identities(5)
        trace, pattern = run_reduction(
            membership,
            lambda pid, identity: APToDiamondHP(period=1.0),
            {"AP": lambda s: APOracle(s, stabilization_time=15.0)},
            crashes={p(1): 10.0, p(3): 12.0},
        )
        result = check_diamond_hp(trace, pattern)
        assert result.ok, result.violations

    def test_ap_to_hsigma(self):
        membership = anonymous_identities(4)
        trace, pattern = run_reduction(
            membership,
            lambda pid, identity: APToHSigma(period=1.0),
            {"AP": lambda s: APOracle(s, stabilization_time=15.0)},
            crashes=CRASH,
        )
        result = check_hsigma(trace, pattern)
        assert result.ok, result.violations


class TestObservationOne:
    def test_homega_from_diamond_hp(self):
        membership = grouped_identities([2, 2, 1])
        trace, pattern = run_reduction(
            membership,
            lambda pid, identity: DiamondHPToHOmega(period=1.0),
            {"DiamondHP": lambda s: DiamondHPOracle(s, stabilization_time=15.0)},
            crashes=CRASH,
        )
        result = check_homega_election(trace, pattern)
        assert result.ok, result.violations

    def test_homega_from_ap_chain_in_anonymous_system(self):
        # AP → ◇HP (Lemma 2) composed with ◇HP → HΩ (Observation 1): the
        # emulated ◇HP is exposed under a detector name consumed by the second
        # reduction on the same process.
        from repro.sim import CompositeProgram

        membership = anonymous_identities(4)

        def factory(pid, identity):
            first = APToDiamondHP(period=1.0, emulated_name="EmulatedDiamondHP",
                                  record_outputs=False)
            second = DiamondHPToHOmega(period=1.0, source_detector="EmulatedDiamondHP")
            return CompositeProgram(first, second)

        trace, pattern = run_reduction(
            membership,
            factory,
            {"AP": lambda s: APOracle(s, stabilization_time=15.0)},
            crashes=CRASH,
        )
        result = check_homega_election(trace, pattern)
        assert result.ok, result.violations


class TestRegistry:
    def test_every_paper_relation_has_model_and_source(self):
        for relation in paper_relations():
            assert relation.model
            assert relation.established_by

    def test_corollary_1_equivalence_in_as(self):
        groups = equivalent_classes(model="AS")
        sigma_group = next(
            group for group in groups if DetectorClass.SIGMA in group
        )
        assert DetectorClass.H_SIGMA in sigma_group
        assert DetectorClass.A_SIGMA in sigma_group

    def test_ap_reaches_homega_in_anonymous_model(self):
        assert is_stronger(DetectorClass.AP, DetectorClass.H_OMEGA, model="AAS")
        assert is_stronger(DetectorClass.AP, DetectorClass.H_SIGMA, model="AAS")

    def test_homega_not_obtainable_from_asigma_in_anonymous_model(self):
        assert not is_stronger(DetectorClass.A_SIGMA, DetectorClass.H_OMEGA, model="AAS")

    def test_reflexivity(self):
        assert is_stronger(DetectorClass.H_OMEGA, DetectorClass.H_OMEGA)

    def test_graph_contains_all_classes(self):
        graph = relation_graph()
        assert set(graph.nodes) == set(DetectorClass)

    def test_model_restriction_drops_edges(self):
        full = relation_graph()
        anonymous_only = relation_graph(model="AAS")
        assert anonymous_only.number_of_edges() < full.number_of_edges()

    def test_implemented_relations_point_to_real_classes(self):
        import repro.reductions as reductions_module

        for relation in paper_relations():
            if relation.implemented_by is None:
                continue
            class_name = relation.implemented_by.rsplit(".", 1)[1]
            assert hasattr(reductions_module, class_name)
