"""Tests for the Figure 9 consensus algorithm (HAS[HΩ, HΣ])."""

from __future__ import annotations

import pytest

from repro.consensus import HOmegaHSigmaConsensus, validate_consensus
from repro.detectors import HOmegaOracle, HSigmaOracle
from repro.identity import ProcessId
from repro.membership import (
    anonymous_identities,
    grouped_identities,
    unique_identities,
)
from repro.sim import AsynchronousTiming, CrashSchedule, Simulation, build_system
from repro.sim.failures import FailurePattern


def p(index: int) -> ProcessId:
    return ProcessId(index)


def run_consensus(
    membership,
    *,
    crashes=None,
    until=500.0,
    seed=23,
    stabilization=20.0,
    noise_period=5.0,
    proposals=None,
):
    proposals = proposals or {
        process: f"value-{process.index}" for process in membership.processes
    }
    schedule = CrashSchedule.at_times(crashes or {})
    detectors = {
        "HOmega": lambda services: HOmegaOracle(
            services, stabilization_time=stabilization, noise_period=noise_period
        ),
        "HSigma": lambda services: HSigmaOracle(
            services, stabilization_time=stabilization
        ),
    }
    system = build_system(
        membership=membership,
        timing=AsynchronousTiming(min_latency=0.1, max_latency=2.0),
        program_factory=lambda pid, identity: HOmegaHSigmaConsensus(proposals[pid]),
        crash_schedule=schedule,
        detectors=detectors,
        seed=seed,
    )
    simulation = Simulation(system)
    trace = simulation.run(until=until, stop_when=lambda sim: sim.all_correct_decided())
    return trace, FailurePattern(membership, schedule), proposals


class TestFigureNineCorrectness:
    @pytest.mark.parametrize(
        "membership_builder",
        [
            lambda: grouped_identities([2, 2, 1]),
            lambda: unique_identities(4),
            lambda: anonymous_identities(4),
        ],
    )
    def test_decides_across_homonymy_patterns(self, membership_builder):
        membership = membership_builder()
        trace, pattern, proposals = run_consensus(membership, crashes={p(1): 10.0})
        verdict = validate_consensus(trace, pattern, proposals)
        assert verdict.ok, verdict.violations

    def test_no_crash(self):
        membership = grouped_identities([2, 2])
        trace, pattern, proposals = run_consensus(membership, stabilization=5.0)
        verdict = validate_consensus(trace, pattern, proposals)
        assert verdict.ok, verdict.violations

    def test_majority_of_processes_crash(self):
        # Figure 9 does not need a majority of correct processes: 3 of 5 crash.
        membership = grouped_identities([3, 2])
        trace, pattern, proposals = run_consensus(
            membership,
            crashes={p(0): 8.0, p(1): 12.0, p(3): 16.0},
            until=700.0,
        )
        verdict = validate_consensus(trace, pattern, proposals)
        assert verdict.ok, verdict.violations

    def test_all_but_one_crash(self):
        membership = unique_identities(4)
        trace, pattern, proposals = run_consensus(
            membership,
            crashes={p(0): 6.0, p(1): 9.0, p(2): 12.0},
            until=700.0,
        )
        verdict = validate_consensus(trace, pattern, proposals)
        assert verdict.ok, verdict.violations

    def test_identical_proposals(self):
        membership = grouped_identities([2, 1])
        proposals = {process: "only-value" for process in membership.processes}
        trace, pattern, proposals = run_consensus(
            membership, proposals=proposals, stabilization=5.0
        )
        verdict = validate_consensus(trace, pattern, proposals)
        assert verdict.ok, verdict.violations
        assert set(verdict.decided_values.values()) == {"only-value"}

    def test_multiple_seeds(self):
        membership = grouped_identities([2, 2, 1])
        for seed in (1, 2, 3):
            trace, pattern, proposals = run_consensus(
                membership, crashes={p(4): 11.0}, seed=seed
            )
            verdict = validate_consensus(trace, pattern, proposals)
            assert verdict.ok, (seed, verdict.violations)

    def test_decided_value_is_a_proposal(self):
        membership = grouped_identities([3, 1])
        trace, pattern, proposals = run_consensus(membership, crashes={p(0): 10.0})
        verdict = validate_consensus(trace, pattern, proposals)
        assert verdict.ok, verdict.violations
        assert set(verdict.decided_values.values()) <= set(proposals.values())

    def test_stable_detectors_decide_quickly(self):
        membership = grouped_identities([2, 1])
        trace, pattern, proposals = run_consensus(
            membership, stabilization=0.0, noise_period=None
        )
        verdict = validate_consensus(trace, pattern, proposals)
        assert verdict.ok, verdict.violations
        assert verdict.max_decision_round is not None
        assert verdict.max_decision_round <= 2
