"""Unit and property tests for identities and identity multisets."""

from __future__ import annotations

import pytest
from hypothesis import given
from hypothesis import strategies as st

from repro.identity import ANONYMOUS_IDENTITY, IdentityMultiset, ProcessId


def bag(*items):
    return IdentityMultiset(items)


class TestProcessId:
    def test_ordering_follows_index(self):
        assert ProcessId(0) < ProcessId(1) < ProcessId(5)

    def test_equality_and_hash(self):
        assert ProcessId(3) == ProcessId(3)
        assert hash(ProcessId(3)) == hash(ProcessId(3))
        assert ProcessId(3) != ProcessId(4)

    def test_usable_as_dict_key(self):
        table = {ProcessId(0): "x", ProcessId(1): "y"}
        assert table[ProcessId(1)] == "y"


class TestIdentityMultisetBasics:
    def test_len_counts_duplicates(self):
        assert len(bag("A", "A", "B")) == 3

    def test_multiplicity(self):
        multiset = bag("A", "A", "B")
        assert multiset.multiplicity("A") == 2
        assert multiset.multiplicity("B") == 1
        assert multiset.multiplicity("C") == 0

    def test_contains(self):
        multiset = bag("A", "B")
        assert "A" in multiset
        assert "C" not in multiset

    def test_equality_is_order_insensitive(self):
        assert bag("A", "B", "A") == bag("A", "A", "B")
        assert bag("A") != bag("A", "A")

    def test_hashable_and_usable_as_label(self):
        labels = {bag("A", "A"): 1, bag("A", "B"): 2}
        assert labels[bag("A", "A")] == 1

    def test_iteration_yields_each_copy(self):
        assert sorted(bag("B", "A", "A")) == ["A", "A", "B"]

    def test_support_is_the_set_of_distinct_identities(self):
        assert bag("A", "A", "B").support() == frozenset({"A", "B"})

    def test_empty(self):
        empty = IdentityMultiset()
        assert len(empty) == 0
        assert empty.is_empty()
        with pytest.raises(ValueError):
            empty.min_identity()

    def test_min_identity(self):
        assert bag("B", "A", "C").min_identity() == "A"

    def test_from_counts_rejects_non_positive(self):
        with pytest.raises(ValueError):
            IdentityMultiset.from_counts({"A": 0})
        with pytest.raises(ValueError):
            IdentityMultiset.from_counts({"A": -1})

    def test_uniform_builds_bottom_power(self):
        multiset = IdentityMultiset.uniform(ANONYMOUS_IDENTITY, 3)
        assert len(multiset) == 3
        assert multiset.multiplicity(ANONYMOUS_IDENTITY) == 3

    def test_uniform_zero_is_empty(self):
        assert IdentityMultiset.uniform("x", 0).is_empty()


class TestIdentityMultisetAlgebra:
    def test_subset_respects_multiplicity(self):
        assert bag("A").issubset(bag("A", "A"))
        assert bag("A", "A").issubset(bag("A", "A", "B"))
        assert not bag("A", "A").issubset(bag("A", "B"))

    def test_superset(self):
        assert bag("A", "A", "B").issuperset(bag("A", "B"))
        assert not bag("A").issuperset(bag("B"))

    def test_union_takes_max_multiplicity(self):
        assert bag("A", "A").union(bag("A", "B")) == bag("A", "A", "B")

    def test_sum_adds_multiplicities(self):
        assert bag("A").sum(bag("A", "B")) == bag("A", "A", "B")

    def test_intersection_takes_min_multiplicity(self):
        assert bag("A", "A", "B").intersection(bag("A", "C")) == bag("A")

    def test_difference_truncates(self):
        assert bag("A", "A", "B").difference(bag("A", "C")) == bag("A", "B")
        assert bag("A").difference(bag("A", "A")).is_empty()

    def test_add_returns_new_multiset(self):
        original = bag("A")
        extended = original.add("B", 2)
        assert extended == bag("A", "B", "B")
        assert original == bag("A")

    def test_add_rejects_non_positive_count(self):
        with pytest.raises(ValueError):
            bag("A").add("B", 0)

    def test_intersects(self):
        assert bag("A", "B").intersects(bag("B", "C"))
        assert not bag("A").intersects(bag("B"))
        assert not IdentityMultiset().intersects(bag("A"))


class TestSubMultisets:
    def test_paper_example_labels(self):
        # I(Π) = {A, A, B}; the labels containing identity B.
        universe = bag("A", "A", "B")
        labels = set(universe.sub_multisets_containing("B"))
        assert labels == {bag("B"), bag("A", "B"), bag("A", "A", "B")}

    def test_sub_multisets_count(self):
        # For {A, A, B} there are (2+1)*(1+1) - 1 = 5 nonempty sub-multisets.
        universe = bag("A", "A", "B")
        assert len(list(universe.sub_multisets())) == 5

    def test_sub_multisets_include_empty_when_requested(self):
        universe = bag("A")
        all_subs = list(universe.sub_multisets(nonempty=False))
        assert IdentityMultiset() in all_subs
        assert len(all_subs) == 2


identity_lists = st.lists(st.sampled_from(["A", "B", "C", "D"]), max_size=6)


class TestMultisetProperties:
    @given(identity_lists, identity_lists)
    def test_union_is_commutative(self, left, right):
        assert IdentityMultiset(left).union(IdentityMultiset(right)) == IdentityMultiset(
            right
        ).union(IdentityMultiset(left))

    @given(identity_lists, identity_lists)
    def test_intersection_is_subset_of_both(self, left, right):
        first, second = IdentityMultiset(left), IdentityMultiset(right)
        shared = first.intersection(second)
        assert shared.issubset(first)
        assert shared.issubset(second)

    @given(identity_lists, identity_lists)
    def test_sum_preserves_total_size(self, left, right):
        first, second = IdentityMultiset(left), IdentityMultiset(right)
        assert len(first.sum(second)) == len(first) + len(second)

    @given(identity_lists)
    def test_size_equals_sum_of_multiplicities(self, items):
        multiset = IdentityMultiset(items)
        assert len(multiset) == sum(
            multiset.multiplicity(identity) for identity in multiset.support()
        )

    @given(identity_lists, identity_lists)
    def test_difference_then_sum_recovers_superset(self, left, right):
        first, second = IdentityMultiset(left), IdentityMultiset(right)
        rebuilt = first.difference(second).sum(first.intersection(second))
        assert rebuilt == first

    @given(identity_lists)
    def test_every_sub_multiset_is_included(self, items):
        multiset = IdentityMultiset(items[:4])
        for sub in multiset.sub_multisets(nonempty=False):
            assert sub.issubset(multiset)
