"""Property-based tests over randomly generated systems and schedules.

These tests sample homonymy patterns, crash schedules, and seeds with
Hypothesis and assert the paper's headline invariants on every sampled run:
the Figure 7 detector always satisfies the HΣ properties, and the two
consensus algorithms never violate validity or agreement and always terminate
when their assumptions hold.
"""

from __future__ import annotations

import itertools

from hypothesis import HealthCheck, given, settings
from hypothesis import strategies as st

from repro.algorithms import HSigmaSynchronousProgram
from repro.consensus import (
    HOmegaHSigmaConsensus,
    HOmegaMajorityConsensus,
    validate_consensus,
)
from repro.detectors import check_hsigma
from repro.detectors.properties import _disjoint_quora_exist
from repro.identity import IdentityMultiset, ProcessId
from repro.membership import Membership
from repro.sim import (
    AsynchronousTiming,
    CrashSchedule,
    Simulation,
    SynchronousTiming,
    build_system,
)
from repro.sim.failures import FailurePattern
from repro.workloads.homonymy import membership_with_distinct_ids
from .helpers import make_services  # noqa: F401  (fixture-style import keeps helpers loaded)

SLOW_SETTINGS = settings(
    max_examples=12,
    deadline=None,
    suppress_health_check=[HealthCheck.too_slow, HealthCheck.data_too_large],
)


# ----------------------------------------------------------------------
# Strategies
# ----------------------------------------------------------------------
def system_shape():
    """(n, distinct_ids) pairs for small systems."""
    return st.integers(min_value=3, max_value=6).flatmap(
        lambda n: st.tuples(st.just(n), st.integers(min_value=1, max_value=n))
    )


@st.composite
def crash_choice(draw, n: int, max_faulty: int):
    count = draw(st.integers(min_value=0, max_value=max_faulty))
    victims = draw(
        st.lists(
            st.integers(min_value=0, max_value=n - 1),
            min_size=count,
            max_size=count,
            unique=True,
        )
    )
    times = draw(
        st.lists(
            st.floats(min_value=1.0, max_value=30.0, allow_nan=False),
            min_size=count,
            max_size=count,
        )
    )
    return {ProcessId(index): time for index, time in zip(victims, times)}


# ----------------------------------------------------------------------
# Figure 7 — HΣ properties under random crash schedules
# ----------------------------------------------------------------------
class TestHSigmaPropertyBased:
    @SLOW_SETTINGS
    @given(shape=system_shape(), data=st.data(), seed=st.integers(0, 1_000))
    def test_figure7_always_satisfies_hsigma(self, shape, data, seed):
        n, distinct = shape
        membership = membership_with_distinct_ids(n, distinct)
        crashes = data.draw(crash_choice(n, n - 1))
        schedule = CrashSchedule.at_times(crashes)
        steps = 40
        system = build_system(
            membership=membership,
            timing=SynchronousTiming(step=1.0),
            program_factory=lambda pid, identity: HSigmaSynchronousProgram(steps=steps),
            crash_schedule=schedule,
            seed=seed,
        )
        trace = Simulation(system).run(until=steps + 2.0)
        result = check_hsigma(trace, FailurePattern(membership, schedule))
        assert result.ok, result.violations


# ----------------------------------------------------------------------
# Consensus — correctness on random scenarios
# ----------------------------------------------------------------------
def _run_consensus(membership, schedule, factory, detectors_stabilization, seed, horizon):
    from repro.experiments.common import default_consensus_detectors

    proposals = {process: f"v{process.index}" for process in membership.processes}
    system = build_system(
        membership=membership,
        timing=AsynchronousTiming(min_latency=0.1, max_latency=2.0),
        program_factory=lambda pid, identity: factory(proposals[pid]),
        crash_schedule=schedule,
        detectors=default_consensus_detectors(detectors_stabilization),
        seed=seed,
    )
    simulation = Simulation(system)
    trace = simulation.run(until=horizon, stop_when=lambda sim: sim.all_correct_decided())
    pattern = FailurePattern(membership, schedule)
    return validate_consensus(trace, pattern, proposals)


class TestConsensusPropertyBased:
    @SLOW_SETTINGS
    @given(shape=system_shape(), data=st.data(), seed=st.integers(0, 1_000))
    def test_figure8_correct_on_random_minority_crash_scenarios(self, shape, data, seed):
        n, distinct = shape
        membership = membership_with_distinct_ids(n, distinct)
        max_faulty = (n - 1) // 2
        crashes = data.draw(crash_choice(n, max_faulty))
        schedule = CrashSchedule.at_times(crashes)
        verdict = _run_consensus(
            membership,
            schedule,
            lambda proposal: HOmegaMajorityConsensus(proposal, n=n),
            detectors_stabilization=15.0,
            seed=seed,
            horizon=600.0,
        )
        assert verdict.validity_ok and verdict.agreement_ok, verdict.violations
        assert verdict.termination_ok, verdict.violations

    @SLOW_SETTINGS
    @given(shape=system_shape(), data=st.data(), seed=st.integers(0, 1_000))
    def test_figure9_correct_on_random_any_crash_scenarios(self, shape, data, seed):
        n, distinct = shape
        membership = membership_with_distinct_ids(n, distinct)
        crashes = data.draw(crash_choice(n, n - 1))
        schedule = CrashSchedule.at_times(crashes)
        verdict = _run_consensus(
            membership,
            schedule,
            lambda proposal: HOmegaHSigmaConsensus(proposal),
            detectors_stabilization=15.0,
            seed=seed,
            horizon=700.0,
        )
        assert verdict.validity_ok and verdict.agreement_ok, verdict.violations
        assert verdict.termination_ok, verdict.violations


# ----------------------------------------------------------------------
# The HΣ safety decision procedure vs brute force
# ----------------------------------------------------------------------
def _brute_force_disjoint(membership, holders_a, multiset_a, holders_b, multiset_b):
    def realisations(holders, multiset):
        holders = sorted(holders)
        for size in [len(multiset)]:
            for combo in itertools.combinations(holders, size):
                if membership.identity_multiset(combo) == multiset:
                    yield frozenset(combo)

    for quorum_a in realisations(holders_a, multiset_a):
        for quorum_b in realisations(holders_b, multiset_b):
            if not quorum_a & quorum_b:
                return True
    return False


class TestDisjointQuorumDecision:
    @settings(max_examples=60, deadline=None)
    @given(
        identities=st.lists(st.sampled_from(["A", "B", "C"]), min_size=2, max_size=5),
        mask_a=st.integers(min_value=0, max_value=31),
        mask_b=st.integers(min_value=0, max_value=31),
        pick_a=st.integers(min_value=0, max_value=31),
        pick_b=st.integers(min_value=0, max_value=31),
    )
    def test_matches_brute_force(self, identities, mask_a, mask_b, pick_a, pick_b):
        membership = Membership.of(identities)
        processes = membership.processes
        holders_a = {p for i, p in enumerate(processes) if mask_a >> i & 1}
        holders_b = {p for i, p in enumerate(processes) if mask_b >> i & 1}
        quorum_a = [p for i, p in enumerate(processes) if pick_a >> i & 1 and p in holders_a]
        quorum_b = [p for i, p in enumerate(processes) if pick_b >> i & 1 and p in holders_b]
        multiset_a = membership.identity_multiset(quorum_a)
        multiset_b = membership.identity_multiset(quorum_b)
        if multiset_a.is_empty() or multiset_b.is_empty():
            return
        expected = _brute_force_disjoint(
            membership, holders_a, multiset_a, holders_b, multiset_b
        )
        actual = _disjoint_quora_exist(
            membership, holders_a, multiset_a, holders_b, multiset_b
        )
        assert actual == expected
