"""Tests for the declarative runtime layer: specs, builder, validation."""

from __future__ import annotations

import pytest

from repro.errors import ConfigurationError
from repro.membership import Membership
from repro.runtime import (
    CrashSpec,
    DetectorSpec,
    MembershipSpec,
    NetworkSpec,
    ScenarioSpec,
    ScenarioValidationError,
    TimingSpec,
    asymmetric,
    asynchronous,
    cascading,
    composed,
    crashes_at,
    duplicating,
    jittered,
    leaders,
    lossy,
    minority,
    no_crashes,
    partial_sync,
    partitioned,
    reliable,
    scenario,
    synchronous,
)
from repro.sim.links import (
    AsymmetricLinks,
    ComposedLinks,
    LossyLinks,
    PartitionedLinks,
    ReliableLinks,
)
from repro.sim.timing import (
    AsynchronousTiming,
    PartiallySynchronousTiming,
    SynchronousTiming,
)


def figure9_spec(seed: int = 7) -> ScenarioSpec:
    return (
        scenario("figure9")
        .processes(8)
        .homonyms([3, 3, 2])
        .timing(partial_sync(gst=30.0, delta=1.0, pre_gst_loss=0.0, pre_gst_max_latency=100.0))
        .crashes(cascading(5, first_at=6.0, interval=4.0))
        .detectors("HOmega", "HSigma", stabilization=20.0)
        .consensus("homega_hsigma")
        .horizon(700.0)
        .seed(seed)
        .build()
    )


class TestSpecRoundTrip:
    def test_dict_round_trip_is_exact(self):
        spec = figure9_spec()
        assert ScenarioSpec.from_dict(spec.to_dict()) == spec

    def test_json_round_trip_is_exact(self):
        spec = figure9_spec()
        assert ScenarioSpec.from_json(spec.to_json()) == spec

    def test_json_round_trip_with_explicit_crash_times(self):
        spec = (
            scenario("explicit")
            .identities(["A", "A", "B"])
            .crashes(crashes_at({1: 10.0}))
            .detectors("HOmega", stabilization=15.0)
            .consensus("homega_majority")
            .build()
        )
        assert ScenarioSpec.from_json(spec.to_json()) == spec

    def test_with_seed_changes_only_the_seed(self):
        spec = figure9_spec(seed=1)
        reseeded = spec.with_seed(99)
        assert reseeded.seed == 99
        assert reseeded.with_seed(1) == spec

    def test_network_section_round_trips_through_dict_json(self):
        spec = (
            scenario("net")
            .processes(5)
            .distinct_ids(2)
            .network(
                composed(
                    lossy(0.2, end=40.0),
                    jittered(1.0, end=40.0),
                    partitioned({"start": 5.0, "end": 30.0, "groups": [[0, 1], [2, 3, 4]]}),
                )
            )
            .detectors("HOmega", "HSigma", stabilization=10.0)
            .consensus("homega_hsigma")
            .build()
        )
        assert ScenarioSpec.from_dict(spec.to_dict()) == spec
        assert ScenarioSpec.from_json(spec.to_json()) == spec
        assert spec.to_dict()["network"]["kind"] == "compose"

    def test_adversarial_flag_round_trips(self):
        spec = (
            scenario("adv")
            .processes(4)
            .distinct_ids(2)
            .network(lossy(0.5))
            .adversarial()
            .detectors("HOmega", "HSigma", stabilization=10.0)
            .consensus("homega_hsigma")
            .build()
        )
        assert spec.adversarial
        assert ScenarioSpec.from_json(spec.to_json()) == spec

    def test_payload_without_network_defaults_to_reliable(self):
        """Pre-link-model JSONL records must still load."""
        spec = figure9_spec()
        payload = spec.to_dict()
        del payload["network"]
        del payload["adversarial"]
        loaded = ScenarioSpec.from_dict(payload)
        assert loaded.network == NetworkSpec()
        assert loaded.network.is_reliable
        assert not loaded.adversarial

    def test_stacked_program_spec_round_trips(self):
        spec = (
            scenario("stacked")
            .processes(5)
            .distinct_ids(3)
            .timing(partial_sync(gst=10.0, delta=1.0, pre_gst_loss=0.0, pre_gst_max_latency=40.0))
            .crashes(minority(at=6.0, count=1))
            .program("ohp_polling", detector_name="HOmega", record_outputs=False)
            .consensus("homega_majority")
            .build()
        )
        assert ScenarioSpec.from_json(spec.to_json()) == spec


class TestSpecMaterialisation:
    def test_membership_kinds_build_the_right_shapes(self):
        assert MembershipSpec("groups", groups=(3, 2, 1)).build().homonymy_degree == 3
        assert MembershipSpec("unique", n=4).build().is_uniquely_identified
        assert MembershipSpec("anonymous", n=4).build().is_anonymous
        assert MembershipSpec("distinct_ids", n=6, distinct=2).build().size == 6
        explicit = MembershipSpec("explicit", identities=("A", "A", "B")).build()
        assert explicit == Membership.of(["A", "A", "B"])

    def test_membership_size_without_building(self):
        assert MembershipSpec("groups", groups=(3, 3, 2)).size == 8
        assert MembershipSpec("explicit", identities=("A", "B")).size == 2
        assert MembershipSpec("unique", n=5).size == 5

    def test_unknown_membership_kind_raises(self):
        with pytest.raises(ConfigurationError):
            MembershipSpec("nope", n=3).build()

    def test_timing_specs_build_the_right_models(self):
        assert isinstance(asynchronous().build(), AsynchronousTiming)
        ps = partial_sync(gst=5.0, delta=0.5).build()
        assert isinstance(ps, PartiallySynchronousTiming) and ps.gst == 5.0
        assert isinstance(synchronous(step=2.0).build(), SynchronousTiming)

    def test_unknown_timing_kind_raises(self):
        with pytest.raises(ConfigurationError):
            TimingSpec("warp")

    def test_crash_specs_build_against_the_membership(self):
        membership = MembershipSpec("unique", n=5).build()
        assert len(no_crashes().build(membership).faulty) == 0
        assert len(minority().build(membership).faulty) == 2
        assert len(cascading(7).build(membership).faulty) == 4  # capped at n-1
        assert len(leaders(1).build(membership).faulty) == 1
        assert len(crashes_at({0: 3.0, 2: 5.0}).build(membership).faulty) == 2

    def test_worst_case_faulty_matches_build(self):
        membership = MembershipSpec("unique", n=7).build()
        for spec in (no_crashes(), minority(), cascading(4), leaders(), crashes_at({1: 2.0})):
            assert spec.worst_case_faulty(7) == len(spec.build(membership).faulty)

    def test_network_specs_build_the_right_link_models(self):
        assert isinstance(reliable().build(), ReliableLinks)
        lossy_model = lossy(0.3, end=25.0).build()
        assert isinstance(lossy_model, LossyLinks) and lossy_model.end == 25.0
        assert isinstance(
            partitioned({"start": 1.0, "end": 2.0, "groups": [[0], [1]]}).build(),
            PartitionedLinks,
        )
        assert isinstance(asymmetric({"0->1": 2.0}).build(), AsymmetricLinks)
        stack = composed(lossy(0.1, end=5.0), jittered(0.5)).build()
        assert isinstance(stack, ComposedLinks) and len(stack.stages) == 2

    def test_unknown_link_kind_raises(self):
        with pytest.raises(ConfigurationError, match="link model"):
            NetworkSpec("wormhole").build()


class TestBuilderValidation:
    def test_workload_is_required(self):
        with pytest.raises(ScenarioValidationError, match="workload"):
            scenario().processes(3).unique_ids().build()

    def test_membership_is_required(self):
        with pytest.raises(ScenarioValidationError, match="membership"):
            scenario().consensus("homega_hsigma").build()

    def test_majority_algorithm_rejects_half_crashes(self):
        with pytest.raises(ScenarioValidationError, match="majority"):
            (
                scenario()
                .processes(6)
                .distinct_ids(3)
                .crashes(cascading(3))
                .detectors("HOmega", stabilization=20.0)
                .consensus("homega_majority")
                .build()
            )

    def test_hsigma_algorithm_accepts_any_failures(self):
        spec = (
            scenario()
            .processes(6)
            .distinct_ids(3)
            .crashes(cascading(5))
            .detectors("HOmega", "HSigma", stabilization=20.0)
            .consensus("homega_hsigma")
            .build()
        )
        assert spec.crashes.worst_case_faulty(6) == 5

    def test_missing_required_detector_is_rejected(self):
        with pytest.raises(ScenarioValidationError, match="HSigma"):
            (
                scenario()
                .processes(4)
                .distinct_ids(2)
                .detectors("HOmega", stabilization=20.0)
                .consensus("homega_hsigma")
                .build()
            )

    def test_stacked_program_publishes_the_detector(self):
        spec = (
            scenario()
            .processes(5)
            .distinct_ids(3)
            .timing(partial_sync(gst=10.0, delta=1.0))
            .program("ohp_polling", detector_name="HOmega")
            .consensus("homega_majority")
            .build()
        )
        assert spec.program == "ohp_polling"

    def test_classical_baseline_requires_unique_identifiers(self):
        with pytest.raises(ScenarioValidationError, match="unique"):
            (
                scenario()
                .processes(5)
                .distinct_ids(3)
                .detectors("Omega", stabilization=20.0)
                .consensus("classical_omega")
                .build()
            )

    def test_anonymous_baseline_requires_anonymous_membership(self):
        with pytest.raises(ScenarioValidationError, match="anonymous"):
            (
                scenario()
                .processes(5)
                .distinct_ids(5)
                .detectors("AOmega", stabilization=20.0)
                .consensus("anonymous_aomega")
                .build()
            )

    def test_consensus_refuses_synchronous_timing(self):
        with pytest.raises(ScenarioValidationError, match="synchronous"):
            (
                scenario()
                .processes(4)
                .distinct_ids(2)
                .timing(synchronous())
                .detectors("HOmega", "HSigma", stabilization=10.0)
                .consensus("homega_hsigma")
                .build()
            )

    def test_figure6_program_requires_partial_synchrony(self):
        with pytest.raises(ScenarioValidationError, match="partial_sync"):
            (
                scenario()
                .processes(4)
                .distinct_ids(2)
                .program("ohp_polling")
                .check("diamond_hp")
                .build()
            )

    def test_processes_contradicting_groups_is_rejected(self):
        with pytest.raises(ScenarioValidationError, match="contradicts"):
            scenario().processes(4).homonyms([3, 3]).consensus("homega_hsigma").build()

    def test_processes_and_shape_commute(self):
        """Regression: shape methods must not freeze n at call time."""
        first = (
            scenario().anonymous().processes(5)
            .detectors("HOmega", "HSigma", stabilization=5.0)
            .consensus("homega_hsigma").build()
        )
        second = (
            scenario().processes(5).anonymous()
            .detectors("HOmega", "HSigma", stabilization=5.0)
            .consensus("homega_hsigma").build()
        )
        assert first == second
        assert first.membership.build().is_anonymous

    def test_late_processes_call_wins(self):
        """Regression: processes() after distinct_ids() must not be ignored."""
        spec = (
            scenario().processes(5).distinct_ids(3).processes(7)
            .detectors("HOmega", "HSigma", stabilization=5.0)
            .consensus("homega_hsigma").build()
        )
        assert spec.membership.build().size == 7

    def test_shape_without_processes_is_a_validation_error(self):
        with pytest.raises(ScenarioValidationError, match="processes"):
            scenario().anonymous().consensus("homega_hsigma").build()

    def test_unknown_consensus_name_is_rejected(self):
        with pytest.raises(ConfigurationError, match="unknown consensus"):
            scenario().processes(3).unique_ids().consensus("paxos").build()

    def test_detector_spec_objects_pass_through(self):
        spec = (
            scenario()
            .processes(3)
            .unique_ids()
            .detectors(DetectorSpec("HOmega", {"stabilization_time": 5.0}))
            .consensus("homega_majority")
            .build()
        )
        assert spec.detectors[0].params["stabilization_time"] == 5.0

    def _consensus_builder(self, network=None):
        builder = (
            scenario()
            .processes(5)
            .distinct_ids(2)
            .detectors("HOmega", "HSigma", stabilization=10.0)
            .consensus("homega_hsigma")
        )
        return builder.network(network) if network is not None else builder

    def test_unbounded_loss_under_has_needs_adversarial(self):
        with pytest.raises(ScenarioValidationError, match="adversarial"):
            self._consensus_builder(lossy(0.2)).build()
        spec = self._consensus_builder(lossy(0.2)).adversarial().build()
        assert spec.adversarial

    def test_bounded_loss_under_has_is_inside_the_envelope(self):
        spec = self._consensus_builder(lossy(0.2, end=50.0)).build()
        assert not spec.adversarial

    def test_post_gst_loss_under_hps_is_flagged(self):
        builder = (
            scenario()
            .processes(4)
            .distinct_ids(2)
            .timing(partial_sync(gst=30.0, delta=1.0))
            .network(lossy(0.2, end=60.0))
            .detectors("HOmega", "HSigma", stabilization=10.0)
            .consensus("homega_hsigma")
        )
        with pytest.raises(ScenarioValidationError, match="post-GST"):
            builder.build()
        assert builder.adversarial().build().adversarial

    def test_pre_gst_only_loss_under_hps_is_accepted(self):
        spec = (
            scenario()
            .processes(4)
            .distinct_ids(2)
            .timing(partial_sync(gst=30.0, delta=1.0))
            .network(lossy(0.2, end=30.0))
            .detectors("HOmega", "HSigma", stabilization=10.0)
            .consensus("homega_hsigma")
            .build()
        )
        assert not spec.adversarial

    def test_any_link_fault_under_hss_is_flagged(self):
        builder = (
            scenario()
            .processes(4)
            .distinct_ids(2)
            .timing(synchronous())
            .network(jittered(0.5, end=10.0))
            .program("hsigma_sync", detector_name="HSigma")
        )
        with pytest.raises(ScenarioValidationError, match="HSS"):
            builder.build()

    def test_constant_asymmetry_is_inside_every_envelope(self):
        # A fixed per-direction penalty preserves "eventually timely" links.
        spec = self._consensus_builder(asymmetric({"0->1": 3.0})).build()
        assert not spec.adversarial

    def test_unbounded_duplication_is_flagged(self):
        with pytest.raises(ScenarioValidationError, match="adversarial"):
            self._consensus_builder(duplicating(0.5)).build()

    def test_noise_period_only_reaches_leader_detectors(self):
        spec = (
            scenario()
            .processes(3)
            .unique_ids()
            .detectors("HOmega", "HSigma", stabilization=5.0, noise_period=3.0)
            .consensus("homega_hsigma")
            .build()
        )
        by_name = {detector.name: detector.params for detector in spec.detectors}
        assert by_name["HOmega"]["noise_period"] == 3.0
        assert "noise_period" not in by_name["HSigma"]
