"""End-to-end tests for the replicated KV service workload."""

from __future__ import annotations

import pickle

import pytest

from repro.consensus import (
    ConsensusFactory,
    HOmegaHSigmaConsensus,
    HOmegaMajorityConsensus,
    homega_hsigma_factory,
    homega_majority_factory,
)
from repro.runtime import (
    CHECKS,
    Engine,
    KVSpec,
    ScenarioSpec,
    ScenarioValidationError,
    lossy,
    minority,
    scenario,
    synchronous,
)


def kv_scenario(name="kv-test", *, seed=0, consensus="homega_majority", **kv_options):
    options = dict(clients=3, ops_per_client=3, think_time=1.0, key_space=4)
    options.update(kv_options)
    detectors = (
        ("HOmega", "HSigma") if consensus == "homega_hsigma" else ("HOmega",)
    )
    return (
        scenario(name)
        .homonyms([2, 2, 1])
        .detectors(*detectors, stabilization=10.0)
        .kv(consensus=consensus, **options)
        .horizon(600.0)
        .seed(seed)
        .build()
    )


class TestEndToEnd:
    def test_fault_free_run_completes_and_linearizes(self):
        record = Engine().run(kv_scenario())
        metrics = record.metrics
        assert metrics["completion_rate"] == 1.0
        assert metrics["linearizable"] is True
        assert metrics["lin_violations"] == 0
        assert metrics["slots_committed"] == metrics["ops_completed"]
        assert metrics["throughput"] > 0
        assert 0 < metrics["latency_p50"] <= metrics["latency_p95"] <= metrics["latency_p99"]

    def test_metrics_are_json_safe_scalars(self):
        import json

        record = Engine().run(kv_scenario())
        json.dumps(record.to_dict())  # must not raise

    def test_replica_crash_is_tolerated(self):
        spec = (
            scenario("kv-crash")
            .homonyms([2, 2, 1])
            .detectors("HOmega", stabilization=10.0)
            .crashes(minority(at=12.0, count=1))
            .kv(clients=3, ops_per_client=3, think_time=1.0, key_space=4)
            .horizon(600.0)
            .build()
        )
        metrics = Engine().run(spec).metrics
        assert metrics["completion_rate"] == 1.0
        assert metrics["linearizable"] is True

    def test_lossy_links_erode_completion_not_correctness(self):
        spec = (
            scenario("kv-lossy")
            .homonyms([2, 2, 1])
            .detectors("HOmega", stabilization=10.0)
            .network(lossy(0.3))
            .adversarial()
            .kv(clients=3, ops_per_client=3, think_time=1.0, key_space=4)
            .horizon(300.0)
            .seed(3)
            .build()
        )
        metrics = Engine().run(spec).metrics
        assert metrics["linearizable"] is True  # whatever completed, linearizes

    def test_hsigma_replication_survives_majority_loss(self):
        spec = (
            scenario("kv-hsigma")
            .homonyms([2, 2, 1])
            .detectors("HOmega", "HSigma", stabilization=10.0)
            .crashes(minority(at=15.0, count=1))
            .kv(
                consensus="homega_hsigma",
                clients=2,
                ops_per_client=3,
                think_time=1.0,
                key_space=4,
            )
            .horizon(600.0)
            .build()
        )
        metrics = Engine().run(spec).metrics
        assert metrics["linearizable"] is True

    def test_local_read_mode_answers_from_replica_stores(self):
        record = Engine().run(kv_scenario(read_mode="local", clients=4, ops_per_client=4))
        metrics = record.metrics
        assert metrics["local_reads"] > 0
        assert metrics["completion_rate"] == 1.0

    def test_open_loop_clients_complete(self):
        record = Engine().run(kv_scenario(loop="open", rate=0.3))
        metrics = record.metrics
        assert metrics["ops_issued"] == 9
        assert metrics["linearizable"] is True

    def test_zipf_skew_runs(self):
        metrics = Engine().run(kv_scenario(skew="zipf")).metrics
        assert metrics["completion_rate"] == 1.0

    def test_registered_check_rides_run_record(self):
        spec = (
            scenario("kv-checked")
            .homonyms([2, 2, 1])
            .detectors("HOmega", stabilization=10.0)
            .kv(clients=2, ops_per_client=3, think_time=1.0, key_space=4)
            .check("kv_linearizable")
            .horizon(600.0)
            .build()
        )
        metrics = Engine().run(spec).metrics
        assert metrics["kv_linearizable_ok"] is True
        assert "kv_linearizable" in CHECKS


class TestDeterminism:
    def test_same_seed_same_digest_and_metrics(self):
        one = Engine().run(kv_scenario(seed=5))
        two = Engine().run(kv_scenario(seed=5))
        assert one.digest == two.digest
        assert one.metrics == two.metrics

    def test_different_seeds_differ(self):
        one = Engine().run(kv_scenario(seed=1))
        two = Engine().run(kv_scenario(seed=2))
        assert one.digest != two.digest

    def test_serial_and_pooled_digests_are_bit_identical(self):
        specs = [kv_scenario(seed=seed) for seed in range(3)]
        serial = [record.digest for record in Engine().run_many(specs)]
        with Engine(jobs=2) as engine:
            pooled = [record.digest for record in engine.run_many(specs)]
        assert serial == pooled


class TestSpecPlumbing:
    def test_kv_spec_round_trips(self):
        kv = KVSpec(clients=5, skew="zipf", mix={"GET": 1.0}, read_mode="local")
        assert KVSpec.from_dict(kv.to_dict()) == kv

    def test_scenario_spec_round_trips_with_kv(self):
        spec = kv_scenario(skew="zipf")
        clone = ScenarioSpec.from_dict(spec.to_dict())
        assert clone == spec
        assert clone.kv is not None and clone.kv.skew == "zipf"

    def test_with_seed_preserves_kv_section(self):
        spec = kv_scenario(seed=0)
        assert spec.with_seed(9).kv == spec.kv

    def test_specs_without_kv_serialize_as_before(self):
        # Pre-KV canonical hashes (and hence run-cache keys) must not move.
        spec = (
            scenario("plain")
            .processes(3)
            .distinct_ids(2)
            .detectors("HOmega", stabilization=10.0)
            .consensus("homega_majority")
            .build()
        )
        assert "kv" not in spec.to_dict()

    def test_kv_validation_rejects_bad_options(self):
        with pytest.raises(Exception):
            KVSpec(loop="batch")
        with pytest.raises(Exception):
            KVSpec(clients=0)
        with pytest.raises(Exception):
            KVSpec(read_mode="quorum")


class TestBuilderValidation:
    def base(self):
        return (
            scenario("kv-builder")
            .homonyms([2, 2, 1])
            .detectors("HOmega", stabilization=10.0)
            .kv(clients=2, ops_per_client=2)
        )

    def test_kv_is_mutually_exclusive_with_consensus(self):
        with pytest.raises(ScenarioValidationError, match="owns the whole system"):
            self.base().consensus("homega_majority").build()

    def test_kv_rejects_synchronous_timing(self):
        with pytest.raises(ScenarioValidationError, match="synchronous"):
            self.base().timing(synchronous()).build()

    def test_kv_requires_the_algorithms_detectors(self):
        with pytest.raises(ScenarioValidationError, match="HOmega"):
            (
                scenario("kv-nodet")
                .homonyms([2, 2, 1])
                .kv(clients=2, ops_per_client=2)
                .build()
            )

    def test_kv_majority_algorithms_reject_majority_crashes(self):
        with pytest.raises(ScenarioValidationError, match="majority"):
            (
                scenario("kv-majority")
                .homonyms([2, 2, 1])
                .detectors("HOmega", stabilization=10.0)
                .crashes(minority(at=5.0, count=3))
                .kv(clients=2, ops_per_client=2)
                .build()
            )

    def test_kv_spec_and_options_are_mutually_exclusive(self):
        with pytest.raises(ScenarioValidationError):
            scenario("x").homonyms([2, 1]).kv(KVSpec(), clients=3)

    def test_scenario_without_any_workload_still_rejected(self):
        with pytest.raises(ScenarioValidationError, match="workload"):
            scenario("empty").processes(3).distinct_ids(2).build()


class TestConsensusFactories:
    def test_named_factory_builds_the_right_program(self):
        factory = homega_majority_factory(n=5)
        program = factory("proposal")
        assert isinstance(program, HOmegaMajorityConsensus)
        assert program.proposal == "proposal"

    def test_hsigma_factory(self):
        assert isinstance(homega_hsigma_factory()("p"), HOmegaHSigmaConsensus)

    def test_factory_is_picklable_unlike_a_lambda(self):
        factory = homega_majority_factory(n=5)
        clone = pickle.loads(pickle.dumps(factory))
        assert isinstance(clone("p"), HOmegaMajorityConsensus)

    def test_factory_has_an_unambiguous_qualname(self):
        # The RunCache refuses "<lambda>" qualnames; the named factory's
        # class qualname is stable and cache-eligible.
        assert "<lambda>" not in type(homega_majority_factory(n=5)).__qualname__

    def test_factory_repr_names_the_algorithm(self):
        assert "HOmegaMajorityConsensus" in repr(homega_majority_factory(n=5))
        assert ConsensusFactory(HOmegaMajorityConsensus, n=5).describe() == (
            "HOmegaMajorityConsensus"
        )


class TestExperimentRegistration:
    def test_e10_is_registered(self):
        from repro.experiments import ALL_EXPERIMENTS

        assert "E10" in ALL_EXPERIMENTS

    def test_quick_e10_is_fully_linearizable(self):
        from repro.experiments import run_e10

        result = run_e10(quick=True, seed=0)
        assert result.experiment == "E10"
        assert result.summary["all_linearizable"] is True
        assert result.summary["violations"] == 0
        assert result.summary["baseline_all_complete"] is True
        assert len(result.rows) == 12
