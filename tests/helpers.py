"""Shared helpers for tests: running probe systems and building detector services."""

from __future__ import annotations

from typing import Mapping

from repro.membership import Membership
from repro.sim import (
    AsynchronousTiming,
    Clock,
    CrashSchedule,
    DetectorServices,
    RngStreams,
    Simulation,
    build_system,
)
from repro.sim.failures import FailurePattern
from repro.detectors.probe import DetectorProbeProgram


def make_services(
    membership: Membership,
    *,
    crash_schedule: CrashSchedule | None = None,
    clock: Clock | None = None,
    seed: int = 0,
) -> DetectorServices:
    """Build stand-alone detector services (for unit-testing oracles)."""
    schedule = crash_schedule or CrashSchedule.none()
    return DetectorServices(
        membership=membership,
        failure_pattern=FailurePattern(membership, schedule),
        clock=clock or Clock(),
        rng_streams=RngStreams(seed),
        schedule=lambda when, action: None,
        poke_all=lambda: None,
    )


def run_probe_system(
    membership: Membership,
    detectors: Mapping,
    probes: Mapping,
    *,
    crash_schedule: CrashSchedule | None = None,
    timing=None,
    until: float = 60.0,
    period: float = 1.0,
    seed: int = 3,
):
    """Run a system whose every process samples the attached detectors.

    Returns ``(simulation, trace)``.
    """
    system = build_system(
        membership=membership,
        timing=timing or AsynchronousTiming(min_latency=0.1, max_latency=1.0),
        program_factory=lambda pid, identity: DetectorProbeProgram(probes, period=period),
        crash_schedule=crash_schedule,
        detectors=detectors,
        seed=seed,
    )
    simulation = Simulation(system)
    trace = simulation.run(until=until)
    return simulation, trace


def poison_run_one(config: dict) -> dict:
    """Chaos-test workload: a poison config kills the whole worker process.

    ``os._exit`` (not an exception) models the real failure the coordinator's
    bisection exists for — a config that segfaults or OOMs the interpreter,
    where no amount of in-process error handling can help.
    """
    import os

    if config.get("poison"):
        os._exit(23)
    return {"value": config["x"] * 2, "x": config["x"]}
