"""Tests for the consensus validator and the stacked (no-oracle) configuration.

The stacked configuration is the paper's end-to-end claim: running the
Figure 6 HΩ implementation *underneath* the Figure 8 consensus algorithm
solves consensus in a partially synchronous homonymous system with a majority
of correct processes and no oracle at all.
"""

from __future__ import annotations

import pytest

from repro.algorithms import OhpPollingProgram
from repro.consensus import (
    ConsensusKeys,
    HOmegaMajorityConsensus,
    validate_consensus,
)
from repro.errors import ConsensusViolationError
from repro.identity import ProcessId
from repro.membership import grouped_identities, unique_identities
from repro.sim import (
    CompositeProgram,
    CrashSchedule,
    PartiallySynchronousTiming,
    RunTrace,
    Simulation,
    build_system,
)
from repro.sim.failures import FailurePattern

KEYS = ConsensusKeys()


def p(index: int) -> ProcessId:
    return ProcessId(index)


class TestValidator:
    def setup_method(self):
        self.membership = unique_identities(3)
        self.pattern = FailurePattern(self.membership, CrashSchedule.at_times({p(2): 5.0}))
        self.proposals = {p(0): "a", p(1): "b", p(2): "c"}

    def _trace(self, decisions):
        trace = RunTrace()
        for process, (value, time) in decisions.items():
            trace.record_decision(process, value, time)
            trace.record(process, KEYS.DECIDED_ROUND, 1, time)
        return trace

    def test_all_good(self):
        trace = self._trace({p(0): ("a", 10.0), p(1): ("a", 12.0)})
        verdict = validate_consensus(trace, self.pattern, self.proposals)
        assert verdict.ok
        assert verdict.last_decision_time == 12.0
        assert verdict.max_decision_round == 1

    def test_validity_violation(self):
        trace = self._trace({p(0): ("not-proposed", 10.0), p(1): ("not-proposed", 10.0)})
        verdict = validate_consensus(trace, self.pattern, self.proposals)
        assert not verdict.validity_ok
        assert not verdict.ok
        with pytest.raises(ConsensusViolationError):
            verdict.raise_on_safety_violation()

    def test_agreement_violation(self):
        trace = self._trace({p(0): ("a", 10.0), p(1): ("b", 10.0)})
        verdict = validate_consensus(trace, self.pattern, self.proposals)
        assert not verdict.agreement_ok
        with pytest.raises(ConsensusViolationError):
            verdict.raise_on_safety_violation()

    def test_agreement_includes_faulty_deciders(self):
        trace = self._trace({p(0): ("a", 10.0), p(1): ("a", 10.0), p(2): ("b", 2.0)})
        verdict = validate_consensus(trace, self.pattern, self.proposals)
        assert not verdict.agreement_ok

    def test_termination_violation(self):
        trace = self._trace({p(0): ("a", 10.0)})
        verdict = validate_consensus(trace, self.pattern, self.proposals)
        assert not verdict.termination_ok
        assert not verdict.ok
        # Safety still holds, so no exception is raised.
        verdict.raise_on_safety_violation()

    def test_termination_not_required(self):
        trace = self._trace({p(0): ("a", 10.0)})
        verdict = validate_consensus(
            trace, self.pattern, self.proposals, require_termination=False
        )
        assert not verdict.termination_ok
        assert verdict.violations == ()

    def test_empty_run_reports_no_decisions(self):
        verdict = validate_consensus(RunTrace(), self.pattern, self.proposals)
        assert not verdict.termination_ok
        assert verdict.last_decision_time is None
        assert verdict.max_decision_round is None


class TestStackedConsensus:
    """Figure 6 (HΩ implementation) running underneath Figure 8 consensus."""

    def run_stacked(self, membership, *, crashes=None, seed=31, until=800.0, gst=15.0):
        proposals = {
            process: f"value-{process.index}" for process in membership.processes
        }
        schedule = CrashSchedule.at_times(crashes or {})

        def factory(pid, identity):
            detector_program = OhpPollingProgram(
                detector_name="HOmega", record_outputs=False
            )
            consensus_program = HOmegaMajorityConsensus(
                proposals[pid], n=membership.size
            )
            return CompositeProgram(detector_program, consensus_program)

        # Links must stay reliable for the consensus layer (Figure 8 sends each
        # message once); before GST they may only be slow, not lossy.
        system = build_system(
            membership=membership,
            timing=PartiallySynchronousTiming(
                gst=gst, delta=1.0, min_latency=0.1, pre_gst_loss=0.0,
                pre_gst_max_latency=30.0,
            ),
            program_factory=factory,
            crash_schedule=schedule,
            seed=seed,
        )
        simulation = Simulation(system)
        trace = simulation.run(
            until=until, stop_when=lambda sim: sim.all_correct_decided()
        )
        return trace, FailurePattern(membership, schedule), proposals

    def test_consensus_without_any_oracle(self):
        membership = grouped_identities([2, 2, 1])
        trace, pattern, proposals = self.run_stacked(membership, crashes={p(1): 10.0})
        verdict = validate_consensus(trace, pattern, proposals)
        assert verdict.ok, verdict.violations

    def test_consensus_without_any_oracle_unique_ids(self):
        membership = unique_identities(5)
        trace, pattern, proposals = self.run_stacked(membership, crashes={p(0): 20.0})
        verdict = validate_consensus(trace, pattern, proposals)
        assert verdict.ok, verdict.violations

    def test_decision_happens_after_gst(self):
        membership = grouped_identities([2, 1])
        trace, pattern, proposals = self.run_stacked(membership, gst=25.0)
        verdict = validate_consensus(trace, pattern, proposals)
        assert verdict.ok, verdict.violations
        assert verdict.last_decision_time > 0.0
