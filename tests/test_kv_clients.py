"""Unit tests for client load shapes, key skew, and operation sampling."""

from __future__ import annotations

import random
from collections import Counter

import pytest

from repro.workloads.kv import DEFAULT_MIX, ClientLoad
from repro.workloads.kv.clients import sample_operation


class TestClientLoadValidation:
    def test_defaults_are_valid(self):
        load = ClientLoad()
        assert load.loop == "closed" and load.skew == "uniform"
        assert load.mix == DEFAULT_MIX

    def test_rejects_unknown_loop(self):
        with pytest.raises(ValueError):
            ClientLoad(loop="batch")

    def test_rejects_unknown_skew(self):
        with pytest.raises(ValueError):
            ClientLoad(skew="pareto")

    def test_rejects_empty_key_space(self):
        with pytest.raises(ValueError):
            ClientLoad(key_space=0)

    def test_rejects_unknown_mix_operation(self):
        with pytest.raises(ValueError):
            ClientLoad(mix={"INCR": 1.0})

    def test_rejects_all_zero_mix(self):
        with pytest.raises(ValueError):
            ClientLoad(mix={"GET": 0.0})


class TestKeySampling:
    def test_uniform_covers_the_key_space(self):
        sampler = ClientLoad(key_space=4).key_sampler()
        rng = random.Random(0)
        seen = {sampler.sample(rng) for _ in range(200)}
        assert seen == {"k0", "k1", "k2", "k3"}

    def test_zipf_is_skewed_toward_low_ranks(self):
        sampler = ClientLoad(key_space=8, skew="zipf", zipf_s=1.2).key_sampler()
        rng = random.Random(0)
        counts = Counter(sampler.sample(rng) for _ in range(2000))
        assert counts["k0"] > counts["k3"] > counts["k7"]

    def test_zipf_sampling_is_deterministic_per_seed(self):
        load = ClientLoad(key_space=8, skew="zipf")
        one = [load.key_sampler().sample(random.Random(42)) for _ in range(1)]
        two = [load.key_sampler().sample(random.Random(42)) for _ in range(1)]
        assert one == two
        sampler = load.key_sampler()
        rng_a, rng_b = random.Random(7), random.Random(7)
        assert [sampler.sample(rng_a) for _ in range(50)] == [
            sampler.sample(rng_b) for _ in range(50)
        ]

    def test_zipf_keys_stay_in_range(self):
        sampler = ClientLoad(key_space=3, skew="zipf", zipf_s=0.5).key_sampler()
        rng = random.Random(1)
        for _ in range(500):
            key = sampler.sample(rng)
            assert key in {"k0", "k1", "k2"}


class TestOperationSampling:
    def test_respects_zero_weights(self):
        rng = random.Random(0)
        mix = {"GET": 1.0, "SET": 0.0, "CAS": 0.0, "DEL": 0.0}
        assert all(sample_operation(rng, mix) == "GET" for _ in range(100))

    def test_default_mix_is_read_heavy(self):
        rng = random.Random(0)
        counts = Counter(sample_operation(rng, dict(DEFAULT_MIX)) for _ in range(2000))
        assert counts["GET"] > counts["SET"] > counts["DEL"]

    def test_partial_mix_is_normalized(self):
        rng = random.Random(0)
        counts = Counter(sample_operation(rng, {"SET": 3.0, "DEL": 1.0}) for _ in range(1000))
        assert set(counts) == {"SET", "DEL"}
        assert counts["SET"] > counts["DEL"]
