"""RunCache under concurrent writers and hostile on-disk state.

The fabric points many worker *processes* at one cache directory, so the
atomic-rename write path is now load-bearing: simultaneous ``put`` calls on
the same key must always leave a complete, valid entry, and a torn partial
write (a crash mid-``put``) must read back as a miss, never an exception.
"""

from __future__ import annotations

import json
import subprocess
import sys
from pathlib import Path

import repro
from repro.runtime.cache import RunCache

_LIBRARY_ROOT = str(Path(repro.__file__).resolve().parent.parent)

_HAMMER = """
import sys
from repro.runtime.cache import RunCache

root, writer_id, rounds = sys.argv[1], int(sys.argv[2]), int(sys.argv[3])
cache = RunCache(root)
for round_number in range(rounds):
    ok = cache.put("row-shared", {"writer": writer_id, "round": round_number})
    assert ok, "put must succeed under contention"
    entry = cache.get("row-shared")
    # another writer may have won the rename race, but the entry read back
    # must always be one writer's complete payload
    assert entry is not None, "a stored key must never read back as a miss"
    assert set(entry) == {"writer", "round"}, f"torn payload: {entry!r}"
"""


def _spawn_writer(root: Path, writer_id: int, rounds: int) -> subprocess.Popen:
    return subprocess.Popen(
        [sys.executable, "-c", _HAMMER, str(root), str(writer_id), str(rounds)],
        env={"PYTHONPATH": _LIBRARY_ROOT},
        stdout=subprocess.PIPE,
        stderr=subprocess.PIPE,
    )


def test_concurrent_writers_same_key_leave_one_valid_entry(tmp_path) -> None:
    """Four processes hammering one key: no crash, no torn read, and the
    surviving entry is a complete payload from one of them."""
    writers = [_spawn_writer(tmp_path, writer_id, 50) for writer_id in range(4)]
    for writer in writers:
        _, stderr = writer.communicate(timeout=120)
        assert writer.returncode == 0, stderr.decode()
    cache = RunCache(tmp_path)
    entry = cache.get("row-shared")
    assert entry is not None
    assert entry["writer"] in range(4) and entry["round"] == 49
    # no temp-file debris leaked past the os.replace
    assert not list(tmp_path.glob("*.tmp"))


def test_same_payload_from_two_processes_is_idempotent(tmp_path) -> None:
    """The fabric's common case: two workers complete the same item and both
    put the identical payload."""
    program = (
        "import sys\n"
        "from repro.runtime.cache import RunCache\n"
        "RunCache(sys.argv[1]).put('rec-abc-00000007', {'metrics': {'t': 1.5}})\n"
    )
    procs = [
        subprocess.Popen(
            [sys.executable, "-c", program, str(tmp_path)],
            env={"PYTHONPATH": _LIBRARY_ROOT},
        )
        for _ in range(2)
    ]
    for proc in procs:
        assert proc.wait(timeout=60) == 0
    assert RunCache(tmp_path).get("rec-abc-00000007") == {"metrics": {"t": 1.5}}


def test_corrupt_partial_write_is_a_miss_not_a_crash(tmp_path) -> None:
    cache = RunCache(tmp_path)
    assert cache.put("row-x", {"value": 1})
    path = tmp_path / "row-x.json"
    # crash mid-write: truncated JSON
    path.write_text(path.read_text()[: len(path.read_text()) // 2])
    assert cache.get("row-x") is None
    # and the miss is repairable in place
    assert cache.put("row-x", {"value": 2})
    assert cache.get("row-x") == {"value": 2}


def test_foreign_and_schema_less_entries_are_misses(tmp_path) -> None:
    cache = RunCache(tmp_path)
    (tmp_path / "row-y.json").write_text(json.dumps({"payload": {"v": 1}}))  # no schema
    (tmp_path / "row-z.json").write_text(json.dumps([1, 2, 3]))  # not an object
    assert cache.get("row-y") is None
    assert cache.get("row-z") is None
