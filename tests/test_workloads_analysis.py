"""Tests for the workload generators and the analysis helpers."""

from __future__ import annotations

import pytest

from repro.analysis import (
    ParameterSweep,
    aggregate_rows,
    consensus_metrics,
    convergence_statistics,
    detector_convergence_time,
    format_value,
    render_series,
    render_table,
)
from repro.consensus import HOmegaMajorityConsensus
from repro.detectors.properties import CheckResult
from repro.errors import ConfigurationError
from repro.identity import ProcessId
from repro.membership import unique_identities
from repro.workloads import (
    ConsensusScenario,
    cascading_crashes,
    crash_fraction,
    homonymy_spectrum,
    leader_targeted_crashes,
    membership_with_distinct_ids,
    minority_crashes,
    no_crashes,
)


def p(index: int) -> ProcessId:
    return ProcessId(index)


class TestHomonymyWorkloads:
    def test_membership_with_distinct_ids(self):
        membership = membership_with_distinct_ids(5, 2)
        assert membership.size == 5
        assert len(membership.distinct_identities) == 2
        assert membership.homonymy_degree == 3

    def test_extremes(self):
        assert membership_with_distinct_ids(4, 4).is_uniquely_identified
        assert membership_with_distinct_ids(4, 1).is_anonymous

    def test_validation(self):
        with pytest.raises(ConfigurationError):
            membership_with_distinct_ids(3, 0)
        with pytest.raises(ConfigurationError):
            membership_with_distinct_ids(3, 4)
        with pytest.raises(ConfigurationError):
            membership_with_distinct_ids(0, 1)

    def test_spectrum_includes_both_extremes(self):
        spectrum = homonymy_spectrum(5)
        assert len(spectrum) == 5
        assert spectrum[0].is_anonymous
        assert spectrum[-1].is_uniquely_identified

    def test_spectrum_with_limited_points(self):
        spectrum = homonymy_spectrum(8, points=3)
        assert spectrum[0].is_anonymous
        assert spectrum[-1].is_uniquely_identified
        with pytest.raises(ConfigurationError):
            homonymy_spectrum(5, points=1)


class TestCrashWorkloads:
    def test_no_crashes(self):
        assert no_crashes().faulty == frozenset()

    def test_minority_crashes_default_is_largest_minority(self):
        membership = unique_identities(7)
        schedule = minority_crashes(membership)
        assert len(schedule.faulty) == 3

    def test_minority_crashes_spares_low_identities(self):
        membership = unique_identities(5)
        schedule = minority_crashes(membership, count=2)
        assert p(0) not in schedule.faulty
        assert p(4) in schedule.faulty

    def test_crash_fraction(self):
        membership = unique_identities(6)
        schedule = crash_fraction(membership, 0.5, seed=3)
        assert len(schedule.faulty) == 3
        assert crash_fraction(membership, 0.0).faulty == frozenset()

    def test_crash_fraction_capped(self):
        membership = unique_identities(3)
        schedule = crash_fraction(membership, 1.0, seed=1)
        assert len(schedule.faulty) == 2

    def test_crash_fraction_validation(self):
        with pytest.raises(ConfigurationError):
            crash_fraction(unique_identities(3), 1.5)

    def test_cascading_crashes(self):
        membership = unique_identities(5)
        schedule = cascading_crashes(membership, 3, first_at=5.0, interval=10.0)
        times = sorted(event.time for event in schedule.events)
        assert times == [5.0, 15.0, 25.0]

    def test_cascading_crashes_partial_broadcast(self):
        membership = unique_identities(4)
        schedule = cascading_crashes(membership, 1, partial_broadcast_fraction=0.5)
        assert schedule.events[0].partial_broadcast_fraction == 0.5

    def test_leader_targeted_crashes_kill_smallest_identities(self):
        membership = unique_identities(5)
        schedule = leader_targeted_crashes(membership, 2)
        assert schedule.faulty == {p(0), p(1)}

    def test_too_many_crashes_rejected(self):
        membership = unique_identities(3)
        with pytest.raises(ConfigurationError):
            cascading_crashes(membership, 3)
        with pytest.raises(ConfigurationError):
            leader_targeted_crashes(membership, 3)


class TestConsensusScenario:
    def test_scenario_runs_and_validates(self):
        membership = membership_with_distinct_ids(5, 2)
        scenario = ConsensusScenario(
            membership=membership,
            consensus_factory=lambda proposal: HOmegaMajorityConsensus(
                proposal, n=membership.size
            ),
            crash_schedule=minority_crashes(membership, at=8.0, count=1),
            detector_stabilization=10.0,
            horizon=400.0,
            seed=5,
        )
        trace, pattern, verdict = scenario.run()
        assert verdict.ok, verdict.violations
        metrics = consensus_metrics(trace, pattern, verdict)
        assert metrics.decided and metrics.safe
        assert metrics.broadcasts > 0
        assert metrics.broadcasts_per_process > 0


class TestAnalysisHelpers:
    def test_format_value(self):
        assert format_value(None) == "—"
        assert format_value(True) == "yes"
        assert format_value(False) == "no"
        assert format_value(1.23456) == "1.235"
        assert format_value(2.0) == "2"
        assert format_value("text") == "text"

    def test_render_table(self):
        table = render_table(
            [{"a": 1, "b": 2.5}, {"a": 3, "b": None}], title="demo"
        )
        assert "demo" in table
        assert "a" in table and "b" in table
        assert "—" in table

    def test_render_table_empty(self):
        assert "(no rows)" in render_table([])

    def test_render_series(self):
        series = render_series([(1, 10.0), (2, 20.0)], x_label="n", y_label="time")
        assert "n" in series and "time" in series

    def test_parameter_sweep_generates_all_combinations(self):
        sweep = ParameterSweep({"a": [1, 2], "b": ["x"]}, repetitions=3, base_seed=100)
        configs = list(sweep)
        assert len(configs) == 6
        assert len({config["seed"] for config in configs}) == 6
        assert {config["a"] for config in configs} == {1, 2}

    def test_parameter_sweep_run_merges_config_and_outcome(self):
        sweep = ParameterSweep({"a": [1, 2]}, repetitions=2)
        rows = sweep.run(lambda config: {"result": config["a"] * 10})
        assert len(rows) == 4
        assert all(row["result"] == row["a"] * 10 for row in rows)

    def test_parameter_sweep_rejects_bad_repetitions(self):
        with pytest.raises(ValueError):
            ParameterSweep({"a": [1]}, repetitions=0)

    def test_aggregate_rows_means_and_rates(self):
        rows = [
            {"group": "g1", "value": 1.0, "ok": True},
            {"group": "g1", "value": 3.0, "ok": False},
            {"group": "g2", "value": 10.0, "ok": True},
        ]
        aggregated = aggregate_rows(rows, group_by=["group"], metrics=["value", "ok"])
        by_group = {entry["group"]: entry for entry in aggregated}
        assert by_group["g1"]["value"] == 2.0
        assert by_group["g1"]["ok"] == 0.5
        assert by_group["g1"]["runs"] == 2
        assert by_group["g2"]["value"] == 10.0

    def test_aggregate_rows_handles_missing_metric(self):
        rows = [{"group": "g", "value": None}, {"group": "g"}]
        aggregated = aggregate_rows(rows, group_by=["group"], metrics=["value"])
        assert aggregated[0]["value"] is None

    def test_detector_convergence_time(self):
        ok = CheckResult(ok=True, stabilization_time=12.0)
        failed = CheckResult(ok=False, violations=("x",))
        assert detector_convergence_time(ok) == 12.0
        assert detector_convergence_time(failed) is None

    def test_convergence_statistics(self):
        stats = convergence_statistics([1.0, 3.0, None])
        assert stats["runs"] == 3
        assert stats["converged_fraction"] == pytest.approx(2 / 3)
        assert stats["mean"] == 2.0
        assert convergence_statistics([]) == {"runs": 0, "converged_fraction": 0.0}
