"""Tests for the property checkers on hand-built traces.

The oracle tests exercise the checkers on known-good behaviour; here we also
feed them deliberately broken traces and make sure every violation type is
caught.
"""

from __future__ import annotations

from repro.detectors import (
    CheckResult,
    check_aomega_election,
    check_ap,
    check_asigma,
    check_diamond_hp,
    check_diamond_p,
    check_homega_election,
    check_hsigma,
    check_omega_election,
    check_script_e,
    check_sigma,
)
from repro.detectors.base import OutputKeys
from repro.identity import IdentityMultiset, ProcessId
from repro.membership import Membership, unique_identities
from repro.sim import CrashSchedule, RunTrace
from repro.sim.failures import FailurePattern

KEYS = OutputKeys()


def p(index: int) -> ProcessId:
    return ProcessId(index)


def bag(*items) -> IdentityMultiset:
    return IdentityMultiset(items)


def make_pattern(membership, crashes=None):
    return FailurePattern(membership, CrashSchedule.at_times(crashes or {}))


class TestCheckResult:
    def test_truthiness(self):
        assert CheckResult(ok=True)
        assert not CheckResult(ok=False, violations=("boom",))

    def test_from_violations(self):
        good = CheckResult.from_violations([])
        bad = CheckResult.from_violations(["x"])
        assert good.ok and not bad.ok


class TestHOmegaChecker:
    def setup_method(self):
        self.membership = Membership.of(["A", "A", "B"])
        self.pattern = make_pattern(self.membership, {p(0): 5.0})
        # Correct: p1 (A), p2 (B).  Expected leader A with multiplicity 1.

    def _trace(self, leaders, multiplicities):
        trace = RunTrace()
        for process, leader in leaders.items():
            trace.record(process, KEYS.H_LEADER, leader, 10.0)
        for process, multiplicity in multiplicities.items():
            trace.record(process, KEYS.H_MULTIPLICITY, multiplicity, 10.0)
        return trace

    def test_accepts_correct_election(self):
        trace = self._trace({p(1): "A", p(2): "A"}, {p(1): 1, p(2): 1})
        assert check_homega_election(trace, self.pattern).ok

    def test_rejects_disagreement(self):
        trace = self._trace({p(1): "A", p(2): "B"}, {p(1): 1, p(2): 1})
        result = check_homega_election(trace, self.pattern)
        assert not result.ok
        assert any("disagree" in violation for violation in result.violations)

    def test_rejects_faulty_leader(self):
        # Elect an identifier carried only by a crashed process.
        membership = Membership.of(["A", "B", "C"])
        pattern = make_pattern(membership, {p(0): 5.0})
        trace = RunTrace()
        for process in (p(1), p(2)):
            trace.record(process, KEYS.H_LEADER, "A", 10.0)
            trace.record(process, KEYS.H_MULTIPLICITY, 1, 10.0)
        result = check_homega_election(trace, pattern)
        assert not result.ok

    def test_rejects_wrong_multiplicity(self):
        trace = self._trace({p(1): "A", p(2): "A"}, {p(1): 2, p(2): 1})
        result = check_homega_election(trace, self.pattern)
        assert not result.ok
        assert any("multiplicity" in violation for violation in result.violations)

    def test_rejects_missing_records(self):
        trace = self._trace({p(1): "A"}, {p(1): 1})
        result = check_homega_election(trace, self.pattern)
        assert not result.ok

    def test_stabilization_time_reported(self):
        trace = RunTrace()
        for process in (p(1), p(2)):
            trace.record(process, KEYS.H_LEADER, "B", 2.0)
            trace.record(process, KEYS.H_LEADER, "A", 7.0)
            trace.record(process, KEYS.H_MULTIPLICITY, 1, 2.0)
        result = check_homega_election(trace, self.pattern)
        assert result.ok
        assert result.stabilization_time == 7.0


class TestDiamondCheckers:
    def test_diamond_hp_accepts_and_rejects(self, paper_example_membership):
        pattern = make_pattern(paper_example_membership, {p(0): 1.0})
        good = RunTrace()
        bad = RunTrace()
        for process in (p(1), p(2)):
            good.record(process, KEYS.H_TRUSTED, bag("A", "B"), 5.0)
            bad.record(process, KEYS.H_TRUSTED, bag("A", "A", "B"), 5.0)
        assert check_diamond_hp(good, pattern).ok
        assert not check_diamond_hp(bad, pattern).ok

    def test_diamond_hp_rejects_non_multiset(self, paper_example_membership):
        pattern = make_pattern(paper_example_membership, {p(0): 1.0})
        trace = RunTrace()
        for process in (p(1), p(2)):
            trace.record(process, KEYS.H_TRUSTED, ("A", "B"), 5.0)
        assert not check_diamond_hp(trace, pattern).ok

    def test_diamond_p(self):
        membership = unique_identities(3)
        pattern = make_pattern(membership, {p(2): 1.0})
        good = RunTrace()
        bad = RunTrace()
        for process in (p(0), p(1)):
            good.record(process, KEYS.DIAMOND_P_TRUSTED, frozenset({"id0", "id1"}), 5.0)
            bad.record(process, KEYS.DIAMOND_P_TRUSTED, frozenset({"id0"}), 5.0)
        assert check_diamond_p(good, pattern).ok
        assert not check_diamond_p(bad, pattern).ok


class TestOmegaCheckers:
    def test_omega_accepts_common_correct_leader(self):
        membership = unique_identities(3)
        pattern = make_pattern(membership, {p(0): 1.0})
        trace = RunTrace()
        for process in (p(1), p(2)):
            trace.record(process, KEYS.OMEGA_LEADER, "id1", 5.0)
        assert check_omega_election(trace, pattern).ok

    def test_omega_rejects_crashed_leader(self):
        membership = unique_identities(3)
        pattern = make_pattern(membership, {p(0): 1.0})
        trace = RunTrace()
        for process in (p(1), p(2)):
            trace.record(process, KEYS.OMEGA_LEADER, "id0", 5.0)
        assert not check_omega_election(trace, pattern).ok

    def test_aomega_requires_exactly_one_leader(self):
        membership = unique_identities(3)
        pattern = make_pattern(membership)
        trace = RunTrace()
        trace.record(p(0), KEYS.A_OMEGA_LEADER, True, 5.0)
        trace.record(p(1), KEYS.A_OMEGA_LEADER, False, 5.0)
        trace.record(p(2), KEYS.A_OMEGA_LEADER, False, 5.0)
        assert check_aomega_election(trace, pattern).ok
        trace.record(p(1), KEYS.A_OMEGA_LEADER, True, 6.0)
        assert not check_aomega_election(trace, pattern).ok


class TestSigmaChecker:
    def test_accepts_intersecting_quorums(self):
        membership = unique_identities(3)
        pattern = make_pattern(membership, {p(2): 1.0})
        trace = RunTrace()
        trace.record(p(0), KEYS.SIGMA_TRUSTED, frozenset({"id0", "id1"}), 1.0)
        trace.record(p(1), KEYS.SIGMA_TRUSTED, frozenset({"id1", "id0"}), 1.0)
        trace.record(p(0), KEYS.SIGMA_TRUSTED, frozenset({"id0", "id1"}), 9.0)
        trace.record(p(1), KEYS.SIGMA_TRUSTED, frozenset({"id0", "id1"}), 9.0)
        assert check_sigma(trace, pattern).ok

    def test_rejects_disjoint_quorums_even_across_times(self):
        membership = unique_identities(4)
        pattern = make_pattern(membership)
        trace = RunTrace()
        trace.record(p(0), KEYS.SIGMA_TRUSTED, frozenset({"id0", "id1"}), 1.0)
        for process in membership.processes:
            trace.record(process, KEYS.SIGMA_TRUSTED, frozenset({"id2", "id3"}), 9.0)
        result = check_sigma(trace, pattern)
        assert not result.ok
        assert any("do not intersect" in violation for violation in result.violations)

    def test_rejects_final_quorum_with_faulty_member(self):
        membership = unique_identities(3)
        pattern = make_pattern(membership, {p(2): 1.0})
        trace = RunTrace()
        for process in (p(0), p(1)):
            trace.record(process, KEYS.SIGMA_TRUSTED, frozenset({"id0", "id2"}), 5.0)
        assert not check_sigma(trace, pattern).ok


class TestScriptEChecker:
    def test_accepts_correct_prefix(self):
        membership = unique_identities(4)
        pattern = make_pattern(membership, {p(3): 1.0})
        trace = RunTrace()
        for process in (p(0), p(1), p(2)):
            trace.record(process, KEYS.SCRIPT_E_ALIVE, ("id2", "id0", "id1", "id3"), 5.0)
        assert check_script_e(trace, pattern).ok

    def test_rejects_correct_process_outside_prefix(self):
        membership = unique_identities(4)
        pattern = make_pattern(membership, {p(3): 1.0})
        trace = RunTrace()
        for process in (p(0), p(1), p(2)):
            trace.record(process, KEYS.SCRIPT_E_ALIVE, ("id0", "id3", "id1", "id2"), 5.0)
        assert not check_script_e(trace, pattern).ok


class TestAPChecker:
    def test_safety_violation_detected(self):
        membership = unique_identities(3)
        pattern = make_pattern(membership, {p(0): 100.0})
        trace = RunTrace()
        trace.record(p(1), KEYS.AP_ANAP, 2, 5.0)  # 3 processes alive at t=5
        trace.record(p(1), KEYS.AP_ANAP, 2, 200.0)
        trace.record(p(2), KEYS.AP_ANAP, 2, 200.0)
        result = check_ap(trace, pattern)
        assert not result.ok
        assert any("safety" in violation for violation in result.violations)

    def test_liveness_violation_detected(self):
        membership = unique_identities(3)
        pattern = make_pattern(membership, {p(0): 1.0})
        trace = RunTrace()
        for process in (p(1), p(2)):
            trace.record(process, KEYS.AP_ANAP, 3, 50.0)
        result = check_ap(trace, pattern)
        assert not result.ok

    def test_good_trace_accepted(self):
        membership = unique_identities(3)
        pattern = make_pattern(membership, {p(0): 10.0})
        trace = RunTrace()
        for process in (p(1), p(2)):
            trace.record(process, KEYS.AP_ANAP, 3, 5.0)
            trace.record(process, KEYS.AP_ANAP, 2, 20.0)
        assert check_ap(trace, pattern).ok


class TestASigmaChecker:
    def test_good_trace(self):
        membership = unique_identities(4)
        pattern = make_pattern(membership, {p(3): 1.0})
        trace = RunTrace()
        for process in membership.processes:
            trace.record(process, KEYS.A_SIGMA_PAIRS, frozenset({("all", 4)}), 1.0)
        for process in (p(0), p(1), p(2)):
            trace.record(
                process, KEYS.A_SIGMA_PAIRS, frozenset({("all", 4), ("corr", 3)}), 10.0
            )
        assert check_asigma(trace, pattern).ok

    def test_duplicate_label_rejected(self):
        membership = unique_identities(2)
        pattern = make_pattern(membership)
        trace = RunTrace()
        for process in membership.processes:
            trace.record(
                process, KEYS.A_SIGMA_PAIRS, frozenset({("x", 1), ("x", 2)}), 1.0
            )
        result = check_asigma(trace, pattern)
        assert not result.ok
        assert any("same label" in violation for violation in result.violations)

    def test_disjoint_quorums_rejected(self):
        membership = unique_identities(4)
        pattern = make_pattern(membership)
        trace = RunTrace()
        # Label "a" held by p0, p1; label "b" held by p2, p3; sizes 2 and 2:
        # the quorums {p0, p1} and {p2, p3} are disjoint.
        trace.record(p(0), KEYS.A_SIGMA_PAIRS, frozenset({("a", 2)}), 1.0)
        trace.record(p(1), KEYS.A_SIGMA_PAIRS, frozenset({("a", 2)}), 1.0)
        trace.record(p(2), KEYS.A_SIGMA_PAIRS, frozenset({("b", 2)}), 1.0)
        trace.record(p(3), KEYS.A_SIGMA_PAIRS, frozenset({("b", 2)}), 1.0)
        result = check_asigma(trace, pattern)
        assert not result.ok
        assert any("disjoint" in violation for violation in result.violations)

    def test_monotonicity_violation(self):
        membership = unique_identities(2)
        pattern = make_pattern(membership)
        trace = RunTrace()
        trace.record(p(0), KEYS.A_SIGMA_PAIRS, frozenset({("x", 2)}), 1.0)
        trace.record(p(0), KEYS.A_SIGMA_PAIRS, frozenset({("x", 3)}), 2.0)
        trace.record(p(0), KEYS.A_SIGMA_PAIRS, frozenset({("x", 2)}), 3.0)
        trace.record(p(1), KEYS.A_SIGMA_PAIRS, frozenset({("x", 2)}), 3.0)
        result = check_asigma(trace, pattern)
        assert not result.ok
        assert any("monotonicity" in violation for violation in result.violations)


class TestHSigmaChecker:
    def setup_method(self):
        # The paper's worked example: Π = {1, 2, 3}, ids A, A, B.
        self.membership = Membership.of(["A", "A", "B"])
        self.pattern = make_pattern(self.membership, {p(1): 5.0})

    def _record_labels(self, trace, process, labels, time):
        trace.record(process, KEYS.H_LABELS, frozenset(labels), time)

    def _record_quora(self, trace, process, pairs, time):
        trace.record(process, KEYS.H_QUORA, frozenset(pairs), time)

    def test_paper_example_satisfies_properties(self):
        trace = RunTrace()
        # Labels as in Section 3.2: S(la) = {1,2}, S(lb) = {2,3}, S(lc) = {1,3}
        # (process indices here are 0-based: paper's process 1 is p(0), etc.)
        self._record_labels(trace, p(0), {"la", "lc"}, 1.0)
        self._record_labels(trace, p(1), {"la", "lb"}, 1.0)
        self._record_labels(trace, p(2), {"lb", "lc"}, 1.0)
        # h_quora of process 1 (p0) and process 3 (p2) from the example.
        self._record_quora(trace, p(0), {("lb", bag("B"))}, 2.0)
        self._record_quora(trace, p(2), {("la", bag("A", "B")), ("lc", bag("A", "B"))}, 2.0)
        result = check_hsigma(trace, self.pattern)
        assert result.ok, result.violations

    def test_duplicate_label_in_quora_rejected(self):
        trace = RunTrace()
        self._record_labels(trace, p(0), {"x"}, 1.0)
        self._record_labels(trace, p(2), {"x"}, 1.0)
        self._record_quora(trace, p(0), {("x", bag("A")), ("x", bag("B"))}, 2.0)
        self._record_quora(trace, p(2), {("x", bag("B"))}, 2.0)
        result = check_hsigma(trace, self.pattern)
        assert not result.ok
        assert any("same label" in violation for violation in result.violations)

    def test_shrinking_labels_rejected(self):
        trace = RunTrace()
        self._record_labels(trace, p(0), {"x", "y"}, 1.0)
        self._record_labels(trace, p(0), {"x"}, 2.0)
        self._record_labels(trace, p(2), {"x"}, 2.0)
        self._record_quora(trace, p(0), {("x", bag("A", "B"))}, 2.0)
        self._record_quora(trace, p(2), {("x", bag("A", "B"))}, 2.0)
        result = check_hsigma(trace, self.pattern)
        assert not result.ok
        assert any("removed labels" in violation for violation in result.violations)

    def test_growing_quorum_multiset_rejected(self):
        trace = RunTrace()
        self._record_labels(trace, p(0), {"x"}, 1.0)
        self._record_labels(trace, p(2), {"x"}, 1.0)
        self._record_quora(trace, p(0), {("x", bag("B"))}, 2.0)
        self._record_quora(trace, p(0), {("x", bag("A", "B"))}, 3.0)
        self._record_quora(trace, p(2), {("x", bag("B"))}, 3.0)
        result = check_hsigma(trace, self.pattern)
        assert not result.ok
        assert any("grew the quorum" in violation for violation in result.violations)

    def test_liveness_violation_rejected(self):
        trace = RunTrace()
        # The only pair names a multiset never covered by correct holders of x:
        # label "x" is held only by the faulty p(1).
        self._record_labels(trace, p(1), {"x"}, 1.0)
        self._record_quora(trace, p(0), {("x", bag("A"))}, 2.0)
        self._record_quora(trace, p(2), {("x", bag("A"))}, 2.0)
        result = check_hsigma(trace, self.pattern)
        assert not result.ok
        assert any("liveness" in violation for violation in result.violations)

    def test_safety_violation_rejected(self):
        # Disjoint quorums: {p0} realises ("x", {A}) and {p2} realises ("y", {B}).
        trace = RunTrace()
        self._record_labels(trace, p(0), {"x"}, 1.0)
        self._record_labels(trace, p(2), {"y"}, 1.0)
        self._record_quora(trace, p(0), {("x", bag("A"))}, 2.0)
        self._record_quora(trace, p(2), {("y", bag("B"))}, 2.0)
        result = check_hsigma(trace, self.pattern)
        assert not result.ok
        assert any("disjoint" in violation for violation in result.violations)

    def test_homonyms_can_force_safety_violations(self):
        # Both A-processes hold label "x" with quorum multiset {A}; two
        # disjoint singletons {p0} and {p1} both realise it.
        trace = RunTrace()
        self._record_labels(trace, p(0), {"x"}, 1.0)
        self._record_labels(trace, p(1), {"x"}, 1.0)
        self._record_labels(trace, p(2), {"x"}, 1.0)
        self._record_quora(trace, p(0), {("x", bag("A"))}, 2.0)
        self._record_quora(trace, p(2), {("x", bag("A"))}, 2.0)
        result = check_hsigma(trace, self.pattern)
        assert not result.ok
        assert any("disjoint" in violation for violation in result.violations)
