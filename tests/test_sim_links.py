"""Tests for the pluggable link-model layer (repro.sim.links) and its wiring."""

from __future__ import annotations

import math
import random

import pytest

from repro.errors import ConfigurationError
from repro.identity import ProcessId
from repro.membership import grouped_identities, unique_identities
from repro.runtime import (
    Engine,
    cascading,
    composed,
    duplicating,
    execute_spec,
    jittered,
    lossy,
    scenario,
)
from repro.sim import (
    AsymmetricLinks,
    AsynchronousTiming,
    ComposedLinks,
    CrashSchedule,
    DuplicatingLinks,
    JitterLinks,
    LossyLinks,
    Partition,
    PartitionedLinks,
    ReliableLinks,
    Simulation,
    build_system,
)
from repro.sim.failures import CrashEvent
from repro.sim.process import ProcessProgram

from .conftest import pid


def rng(seed: int = 0) -> random.Random:
    return random.Random(seed)


class TestLinkModelUnits:
    def test_reliable_is_the_identity(self):
        times = (1.0, 2.0)
        assert ReliableLinks().deliveries(pid(0), pid(1), 0.5, times, rng()) == times
        assert ReliableLinks().unreliable_until() == 0.0
        assert ReliableLinks().extra_delay_bound() == 0.0

    def test_lossy_drops_deterministically_for_a_fixed_seed(self):
        links = LossyLinks(loss=0.5)
        first = [links.deliveries(pid(0), pid(1), 1.0, (2.0,), rng(7)) for _ in range(1)]
        second = [links.deliveries(pid(0), pid(1), 1.0, (2.0,), rng(7)) for _ in range(1)]
        assert first == second

    def test_lossy_respects_its_window(self):
        links = LossyLinks(loss=1.0, start=10.0, end=20.0)
        assert links.deliveries(pid(0), pid(1), 5.0, (6.0,), rng()) == (6.0,)
        assert links.deliveries(pid(0), pid(1), 15.0, (16.0,), rng()) == ()
        assert links.deliveries(pid(0), pid(1), 25.0, (26.0,), rng()) == (26.0,)
        assert links.unreliable_until() == 20.0

    def test_lossy_without_end_is_unreliable_forever(self):
        assert LossyLinks(loss=0.1).unreliable_until() == math.inf
        assert LossyLinks(loss=0.0).unreliable_until() == 0.0

    def test_lossy_validates_probability_and_window(self):
        with pytest.raises(ConfigurationError):
            LossyLinks(loss=1.5)
        with pytest.raises(ConfigurationError):
            LossyLinks(loss=0.1, start=5.0, end=5.0)

    def test_duplicating_emits_extra_copies(self):
        links = DuplicatingLinks(probability=1.0, copies=3)
        out = links.deliveries(pid(0), pid(1), 0.0, (4.0,), rng())
        assert out == (4.0, 4.0, 4.0)

    def test_duplicating_spread_delays_the_extras(self):
        links = DuplicatingLinks(probability=1.0, copies=2, spread=1.0)
        out = links.deliveries(pid(0), pid(1), 0.0, (4.0,), rng(3))
        assert len(out) == 2
        assert out[0] == 4.0
        assert 4.0 <= out[1] <= 5.0
        assert links.extra_delay_bound() == 1.0

    def test_jitter_only_delays(self):
        links = JitterLinks(max_jitter=2.0)
        (when,) = links.deliveries(pid(0), pid(1), 0.0, (3.0,), rng(5))
        assert 3.0 <= when <= 5.0
        assert links.unreliable_until() == 0.0
        assert links.extra_delay_bound() == 2.0

    def test_asymmetric_penalises_one_direction(self):
        links = AsymmetricLinks(extra={"0->1": 5.0})
        assert links.deliveries(pid(0), pid(1), 0.0, (1.0,), rng()) == (6.0,)
        assert links.deliveries(pid(1), pid(0), 0.0, (1.0,), rng()) == (1.0,)
        assert links.unreliable_until() == 0.0
        assert links.extra_delay_bound() == 5.0

    def test_asymmetric_rejects_malformed_keys(self):
        with pytest.raises(ConfigurationError):
            AsymmetricLinks(extra={"zero to one": 1.0})
        with pytest.raises(ConfigurationError):
            AsymmetricLinks(extra={"0->1": -1.0})
        with pytest.raises(ConfigurationError):
            AsymmetricLinks(extra={"-1->2": 1.0})


class TestPartitions:
    def window(self, start=10.0, end=20.0):
        return Partition(start=start, end=end, groups=((0, 1), (2, 3)))

    def test_severs_across_blocks_during_the_window(self):
        cut = self.window()
        assert cut.severs(pid(0), pid(2), 15.0)
        assert cut.severs(pid(3), pid(1), 15.0)

    def test_same_block_and_unlisted_processes_keep_their_links(self):
        cut = self.window()
        assert not cut.severs(pid(0), pid(1), 15.0)
        assert not cut.severs(pid(0), pid(4), 15.0)  # 4 is in no block
        assert not cut.severs(pid(4), pid(2), 15.0)

    def test_heals_at_the_window_end(self):
        cut = self.window()
        assert not cut.severs(pid(0), pid(2), 9.9)
        assert not cut.severs(pid(0), pid(2), 20.0)
        assert cut.unreliable_until() == 20.0

    def test_permanent_partition_never_heals(self):
        forever = Partition(start=5.0, end=None, groups=((0,), (1,)))
        assert forever.severs(pid(0), pid(1), 1e9)
        assert forever.unreliable_until() == math.inf

    def test_rejects_overlapping_blocks_and_single_blocks(self):
        with pytest.raises(ConfigurationError):
            Partition(start=0.0, end=1.0, groups=((0, 1), (1, 2)))
        with pytest.raises(ConfigurationError):
            Partition(start=0.0, end=1.0, groups=((0, 1),))

    def test_partitioned_links_drop_crossing_copies(self):
        links = PartitionedLinks.from_windows(
            [{"start": 0.0, "end": 10.0, "groups": [[0], [1]]}]
        )
        assert links.deliveries(pid(0), pid(1), 5.0, (6.0,), rng()) == ()
        assert links.deliveries(pid(0), pid(1), 11.0, (12.0,), rng()) == (12.0,)


class TestComposition:
    def test_stages_apply_in_order_and_short_circuit_on_empty(self):
        links = ComposedLinks(
            (
                LossyLinks(loss=1.0),
                DuplicatingLinks(probability=1.0, copies=4),
            )
        )
        # Loss first: everything is dropped before duplication can happen.
        assert links.deliveries(pid(0), pid(1), 0.0, (1.0,), rng()) == ()

    def test_envelope_facts_combine(self):
        links = ComposedLinks(
            (
                LossyLinks(loss=0.2, end=30.0),
                JitterLinks(max_jitter=1.5),
                Partition(start=0.0, end=50.0, groups=((0,), (1,))),
            )
        )
        assert links.unreliable_until() == 50.0
        assert links.extra_delay_bound() == 1.5

    def test_empty_composition_is_reliable(self):
        links = ComposedLinks(())
        assert links.deliveries(pid(0), pid(1), 0.0, (1.0,), rng()) == (1.0,)
        assert links.unreliable_until() == 0.0


class Beacon(ProcessProgram):
    """Broadcast a beacon every time unit for 20 units."""

    def setup(self, ctx):
        def task():
            for _ in range(20):
                ctx.broadcast("BEACON")
                yield ctx.sleep(1.0)

        ctx.spawn(task, name="beacon")


def _noop_program_system(membership, *, links=None, schedule=None, seed=0):
    return build_system(
        membership=membership,
        timing=AsynchronousTiming(min_latency=0.1, max_latency=0.5),
        program_factory=lambda pid_, identity: Beacon(),
        crash_schedule=schedule or CrashSchedule.none(),
        links=links,
        seed=seed,
    )


class TestNetworkIntegration:
    def test_lossy_network_delivers_fewer_copies(self):
        membership = unique_identities(4)
        reliable = Simulation(_noop_program_system(membership)).run(until=30.0)
        lossy_run = Simulation(
            _noop_program_system(membership, links=LossyLinks(loss=0.4))
        ).run(until=30.0)
        assert reliable.message_copies_delivered == reliable.message_copies_sent
        assert lossy_run.message_copies_delivered < lossy_run.message_copies_sent

    def test_duplicating_network_delivers_more_copies(self):
        membership = unique_identities(4)
        trace = Simulation(
            _noop_program_system(
                membership, links=DuplicatingLinks(probability=1.0, copies=2)
            )
        ).run(until=30.0)
        assert trace.message_copies_delivered == 2 * trace.message_copies_sent

    def test_same_seed_same_deliveries_under_adversity(self):
        membership = grouped_identities([2, 2])
        links = ComposedLinks(
            (LossyLinks(loss=0.3), JitterLinks(max_jitter=1.0))
        )
        first = Simulation(_noop_program_system(membership, links=links, seed=5)).run(
            until=30.0
        )
        second = Simulation(_noop_program_system(membership, links=links, seed=5)).run(
            until=30.0
        )
        assert first.message_copies_delivered == second.message_copies_delivered
        assert first.deliveries_by_kind() == second.deliveries_by_kind()

    def test_permanent_partition_blocks_cross_traffic_only(self):
        membership = unique_identities(4)
        links = PartitionedLinks.from_windows(
            [{"start": 0.0, "end": None, "groups": [[0, 1], [2, 3]]}]
        )
        trace = Simulation(_noop_program_system(membership, links=links)).run(until=30.0)
        # Each broadcast reaches only the sender's own block: 2 of 4 copies.
        assert trace.message_copies_delivered == trace.message_copies_sent // 2


class TestPartialBroadcastDeterminism:
    """Crash-while-broadcasting subsets stay deterministic per seed."""

    def _system(self, *, links=None, seed=3):
        membership = unique_identities(5)
        schedule = CrashSchedule(
            (CrashEvent(pid(4), time=4.0, partial_broadcast_fraction=0.5),)
        )
        return _noop_program_system(membership, links=links, schedule=schedule, seed=seed)

    def test_fixed_seed_fixed_recipient_subsets(self):
        first = Simulation(self._system()).run(until=30.0)
        second = Simulation(self._system()).run(until=30.0)
        assert first.message_copies_sent == second.message_copies_sent
        assert first.deliveries_by_kind() == second.deliveries_by_kind()

    def test_partial_broadcast_truncates_the_final_broadcast(self):
        trace = Simulation(self._system()).run(until=30.0)
        # The victim's broadcast at its crash instant reaches only 2 of 5.
        full = Simulation(
            _noop_program_system(
                unique_identities(5),
                schedule=CrashSchedule((CrashEvent(pid(4), time=4.0),)),
                seed=3,
            )
        ).run(until=30.0)
        assert trace.message_copies_sent < full.message_copies_sent

    def test_partial_broadcast_under_link_models_matches_across_executors(self):
        spec = (
            scenario("partial-bcast")
            .processes(5)
            .distinct_ids(2)
            .crashes(
                cascading(2, first_at=6.0, interval=4.0, partial_broadcast_fraction=0.5)
            )
            .network(composed(lossy(0.15, end=30.0), jittered(0.5, end=30.0)))
            .detectors("HOmega", "HSigma", stabilization=12.0)
            .consensus("homega_hsigma")
            .horizon(300.0)
            .seed(9)
            .build()
        )
        specs = [spec.with_seed(seed) for seed in range(4)]
        serial = Engine().run_many(specs)
        parallel = Engine(jobs=2).run_many(specs)
        assert serial == parallel
        assert all(record.metrics["safe"] for record in serial)

    def test_execute_spec_reproducible_under_duplication(self):
        spec = (
            scenario("dup")
            .processes(4)
            .distinct_ids(2)
            .network(duplicating(0.5, copies=2, spread=0.3, end=40.0))
            .detectors("HOmega", "HSigma", stabilization=8.0)
            .consensus("homega_hsigma")
            .horizon(200.0)
            .seed(2)
            .build()
        )
        assert execute_spec(spec) == execute_spec(spec)
