"""Tests for the sweep-scale execution layer: warm worker pool, chunked
dispatch, streaming, the digest-keyed run cache, and worker-crash handling."""

from __future__ import annotations

import json
import os

import pytest

from repro.errors import ConfigurationError, WorkerCrashError
from repro.runtime import (
    Engine,
    ParallelExecutor,
    RunCache,
    ScenarioSpec,
    SerialExecutor,
    WorkerPool,
    canonical_spec_hash,
    executor_for,
    minority,
    run_with_digest_capture,
    scenario,
)
from repro.runtime.executors import describe_item


def small_spec(seed: int = 0, horizon: float = 300.0) -> ScenarioSpec:
    return (
        scenario("executor-test")
        .processes(4)
        .distinct_ids(2)
        .crashes(minority(at=6.0, count=1))
        .detectors("HOmega", "HSigma", stabilization=10.0)
        .consensus("homega_majority")
        .horizon(horizon)
        .seed(seed)
        .build()
    )


def _double(config: dict) -> dict:
    return {"doubled": config["x"] * 2}


def _crash_on_seed_three(config: dict) -> dict:
    if config["seed"] == 3:
        os._exit(13)
    return {"ok": True}


class TestWorkerPoolLifecycle:
    def test_lazy_spawn_and_reuse_across_calls(self):
        with WorkerPool(jobs=2) as pool:
            assert not pool.alive  # nothing spawned until real work arrives
            first = pool.map(_double, [{"x": i} for i in range(6)])
            assert pool.alive
            backing = pool._pool
            second = pool.map(_double, [{"x": i} for i in range(6)])
            assert pool._pool is backing  # same processes served both calls
            assert first == second == [{"doubled": 2 * i} for i in range(6)]
        assert not pool.alive

    def test_close_is_idempotent_and_respawns_lazily(self):
        pool = WorkerPool(jobs=2)
        pool.map(_double, [{"x": 1}, {"x": 2}])
        pool.close()
        pool.close()  # second close is a no-op
        assert not pool.alive
        # A call after close() starts a fresh pool instead of failing.
        assert pool.map(_double, [{"x": 3}, {"x": 4}]) == [{"doubled": 6}, {"doubled": 8}]
        pool.close()

    def test_engine_owns_pool_across_run_sweep_calls(self):
        specs = [small_spec(seed) for seed in range(4)]
        with Engine(jobs=2) as engine:
            engine.run_many(specs)
            backing = engine.executor._pool
            assert backing is not None
            engine.run_many(specs)
            assert engine.executor._pool is backing
        assert not engine.executor.alive

    def test_single_item_runs_in_process_until_pool_is_warm(self):
        pool = WorkerPool(jobs=2)
        assert pool.map(_double, [{"x": 5}]) == [{"doubled": 10}]
        assert not pool.alive  # one item never justified spawning
        pool.close()


class TestValidationBoundaries:
    def test_chunk_multiplier_validated_everywhere(self):
        with pytest.raises(ConfigurationError):
            WorkerPool(2, chunk_multiplier=0)
        with pytest.raises(ConfigurationError):
            ParallelExecutor(2, chunk_multiplier=0)
        with pytest.raises(ConfigurationError):
            executor_for(2, chunk_multiplier=0)
        with pytest.raises(ConfigurationError):
            executor_for(4, pool="lukewarm")
        with pytest.raises(ConfigurationError):
            WorkerPool(jobs=0)

    def test_chunk_multiplier_flows_through_engine(self):
        engine = Engine(jobs=2, chunk_multiplier=7)
        assert engine.executor._chunk_multiplier == 7
        engine.close()
        with pytest.raises(ConfigurationError):
            Engine(jobs=2, chunk_multiplier=0)

    def test_engine_rejects_executor_plus_tuning_params(self):
        with pytest.raises(ValueError):
            Engine(SerialExecutor(), chunk_multiplier=2)
        with pytest.raises(ValueError):
            Engine(SerialExecutor(), jobs=2)
        with pytest.raises(ValueError):
            Engine(SerialExecutor(), pool="cold")  # would be silently ignored


class TestDigestEquivalence:
    def test_serial_warm_and_cold_records_are_identical(self):
        specs = [small_spec(seed) for seed in range(5)]
        serial = Engine().run_many(specs)
        with Engine(jobs=2) as warm_engine:
            warm = warm_engine.run_many(specs)
        cold = Engine(executor_for(2, pool="cold")).run_many(specs)
        assert [r.digest for r in serial] == [r.digest for r in warm]
        assert [r.digest for r in serial] == [r.digest for r in cold]
        assert serial == warm == cold

    def test_run_with_digest_capture_returns_run_digests(self):
        from repro.runtime.engine import execute_spec

        record, digests = run_with_digest_capture((execute_spec, small_spec(2)))
        assert [f"{d:016x}" for d in digests] == [record.digest]


class TestStreaming:
    def test_stream_yields_in_input_order(self):
        specs = [small_spec(seed) for seed in range(5)]
        with Engine(jobs=2) as engine:
            streamed = list(engine.run_many(specs, stream=True))
        assert [r.seed for r in streamed] == [0, 1, 2, 3, 4]
        assert streamed == Engine().run_many(specs)

    def test_stream_is_lazy_and_jsonl_flushes_incrementally(self, tmp_path):
        log = tmp_path / "runs.jsonl"
        engine = Engine(jsonl_path=str(log))
        rows = engine.sweep(_double, [{"x": i, "seed": i} for i in range(4)], stream=True)
        first = next(rows)
        assert first == {"x": 0, "seed": 0, "doubled": 0}
        # Only the consumed row has been computed and logged so far.
        assert len(log.read_text().splitlines()) == 1
        rest = list(rows)
        assert len(rest) == 3
        assert len(log.read_text().splitlines()) == 4

    def test_progress_hook_sees_every_payload_in_order(self):
        seen: list[dict] = []
        engine = Engine(progress=seen.append)
        engine.sweep(_double, [{"x": i, "seed": i} for i in range(3)])
        assert [payload["x"] for payload in seen] == [0, 1, 2]


class TestRunCache:
    def test_record_cache_hit_reproduces_run_exactly(self, tmp_path):
        spec = small_spec(1)
        first = Engine(cache=str(tmp_path)).run(spec)
        cached_engine = Engine(cache=str(tmp_path))
        second = cached_engine.run(spec)
        assert second == first
        assert second.digest == first.digest
        assert cached_engine.cache.hits == 1

    def test_spec_edit_changes_hash_and_misses(self, tmp_path):
        engine = Engine(cache=str(tmp_path))
        engine.run(small_spec(1))
        edited = small_spec(1, horizon=301.0)
        assert canonical_spec_hash(edited) != canonical_spec_hash(small_spec(1))
        hits_before = engine.cache.hits
        engine.run(edited)
        assert engine.cache.hits == hits_before  # a genuine recompute

    def test_seed_is_part_of_the_key_not_the_hash(self, tmp_path):
        assert canonical_spec_hash(small_spec(1)) == canonical_spec_hash(small_spec(2))
        assert RunCache.record_key(small_spec(1)) != RunCache.record_key(small_spec(2))

    def test_sweep_outcomes_are_memoized_per_function_and_config(self, tmp_path):
        configs = [{"x": i, "seed": i} for i in range(4)]
        first = Engine(cache=str(tmp_path)).sweep(_double, configs)
        engine = Engine(cache=str(tmp_path))
        second = engine.sweep(_double, configs)
        assert second == first
        assert engine.cache.hits == len(configs)
        # A different config is a different key.
        engine.sweep(_double, [{"x": 99, "seed": 99}])
        assert engine.cache.hits == len(configs)

    def test_corrupt_entry_is_a_miss_and_gets_rewritten(self, tmp_path):
        spec = small_spec(4)
        engine = Engine(cache=str(tmp_path))
        engine.run(spec)
        path = tmp_path / f"{RunCache.record_key(spec)}.json"
        path.write_text("{not json")
        fresh = Engine(cache=str(tmp_path))
        record = fresh.run(spec)
        assert record.metrics["safe"]
        assert json.loads(path.read_text())["payload"]["digest"] == record.digest

    def test_ambiguous_function_names_are_never_cached(self, tmp_path):
        # Two different lambdas share the qualname "<lambda>" (and nested
        # functions share "...<locals>..."): caching them would let one serve
        # the other's rows.  They run fine — they just never hit the cache.
        configs = [{"x": 2, "seed": 0}]
        engine = Engine(cache=str(tmp_path))
        first = engine.sweep(lambda c: {"y": c["x"] * 10}, configs)
        second = engine.sweep(lambda c: {"y": c["x"] * 1000}, configs)
        assert first == [{"x": 2, "seed": 0, "y": 20}]
        assert second == [{"x": 2, "seed": 0, "y": 2000}]
        assert engine.cache.hits == 0 and len(engine.cache) == 0
        assert not RunCache.function_cacheable(lambda c: c)
        assert RunCache.function_cacheable(_double)

    def test_unserializable_payloads_are_not_cached(self, tmp_path):
        cache = RunCache(tmp_path)
        assert not cache.put("row-xyz", {"bad": object()})
        assert not cache.put("row-tuple", {"value": (1, 2)})  # would come back a list
        assert len(cache) == 0


class TestWorkerCrashHandling:
    def test_crash_names_the_inflight_scenarios_and_pool_heals(self):
        configs = [{"name": "boom", "seed": seed} for seed in range(4)]
        with WorkerPool(jobs=2) as pool:
            with pytest.raises(WorkerCrashError) as excinfo:
                pool.map(_crash_on_seed_three, configs)
            assert "boom[seed=3]" in str(excinfo.value)
            assert "boom[seed=3]" in excinfo.value.candidates
            assert not pool.alive  # the broken pool was discarded...
            healed = pool.map(_double, [{"x": 1}, {"x": 2}])  # ...and respawned
            assert healed == [{"doubled": 2}, {"doubled": 4}]

    def test_idle_worker_death_is_wrapped_and_pool_heals(self):
        # A worker dying *between* calls breaks the pool before any future
        # exists, so the failure surfaces from submit() rather than a
        # future's result(); it must still come out as WorkerCrashError and
        # the next call must get a fresh pool.
        import signal

        with WorkerPool(jobs=2) as pool:
            pool.map(_double, [{"x": 1}, {"x": 2}])  # spawn + warm
            for pid in list(pool._pool._processes):
                os.kill(pid, signal.SIGKILL)
            with pytest.raises(WorkerCrashError):
                pool.map(_double, [{"name": "idle", "seed": s} for s in range(4)])
            assert not pool.alive  # broken pool discarded...
            healed = pool.map(_double, [{"x": 3}, {"x": 4}])  # ...and respawned
            assert healed == [{"doubled": 6}, {"doubled": 8}]

    def test_describe_item_formats(self):
        assert describe_item({"name": "e1", "seed": 7}) == "e1[seed=7]"
        assert describe_item(small_spec(3)) == "executor-test[seed=3]"
        assert describe_item({"seed": 2}) == "<unnamed>[seed=2]"
        assert describe_item(42) == "42"
