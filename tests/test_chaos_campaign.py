"""Chaos campaigns: seeded plans, journal/cache mutilation, link shaping.

Everything here is tier-1 safe: the link-shaping tests drive
:class:`ShapedLink` against a fake writer (no sockets), and the one
end-to-end campaign runs with the KV and real-TCP legs disabled — worker
subprocesses and SIGKILL/SIGSTOP injections included, a few seconds of wall
clock.
"""

from __future__ import annotations

import asyncio
import json
import random

import pytest

from repro.chaos import CampaignReport, FaultPlan, run_campaign
from repro.chaos.campaign import corrupt_cache_entries, mutilate_journal
from repro.errors import ConfigurationError
from repro.fabric import plan_sweep
from repro.fabric.coordinator import Coordinator
from repro.fabric.work import ItemResult
from repro.runtime.cache import RunCache
from repro.transport.node import LINK_PARAM_KEYS, ShapedLink, validate_link_params
from repro.transport.orchestrator import (
    DEFAULT_READY_TIMEOUT,
    resolve_timeouts,
)


# -- FaultPlan: one seed determines everything ------------------------------


def test_fault_plan_is_a_pure_function_of_the_seed() -> None:
    assert FaultPlan.from_seed(41) == FaultPlan.from_seed(41)
    assert FaultPlan.from_seed(41) != FaultPlan.from_seed(42)
    # and it stays replayable as a dict (what the campaign report embeds)
    assert FaultPlan.from_seed(41).to_dict() == FaultPlan.from_seed(41).to_dict()


def test_fault_plan_draws_stay_in_their_envelopes() -> None:
    for seed in range(50):
        plan = FaultPlan.from_seed(seed)
        assert 1 <= plan.kill_worker_after <= 4
        assert 2 <= plan.stall_worker_after <= 6
        assert 1 <= plan.crash_after_chunks <= 3
        assert 1 <= plan.corrupt_cache_entries <= 3
        assert plan.link["loss"] in (0.05, 0.1, 0.15)
        assert plan.link["delay"] in (0.0, 0.1)
        assert plan.link["seed"] == seed
        assert plan.transport_fault in ("kill", "suspend")
        validate_link_params(dict(plan.link))  # every plan's link is runnable


def test_fault_plan_injection_list_reflects_the_toggles() -> None:
    seeds = range(50)
    plans = [FaultPlan.from_seed(seed) for seed in seeds]
    for plan in plans:
        kinds = [injection.kind for injection in plan.injections()]
        assert ("torn_journal" in kinds) == plan.torn_journal
        assert ("foreign_journal_line" in kinds) == plan.foreign_line
        assert kinds.count("kill_worker") == 1
        assert kinds.count("shaped_link") == 1
    # the 0.75 toggles actually vary across seeds (both branches exercised)
    assert {plan.torn_journal for plan in plans} == {True, False}
    assert {plan.foreign_line for plan in plans} == {True, False}


# -- journal mutilation vs the loader's contract ----------------------------


def _journal_fixture(tmp_path):
    """A frozen 4-item plan plus one shard journal holding all 4 results."""
    plan = plan_sweep(
        "tests.helpers.poison_run_one",
        [{"x": index} for index in range(4)],
        name="mutilate",
    )
    state = tmp_path / "state"
    coordinator = Coordinator(plan, state_dir=state, workers=1)
    shards = coordinator.shards_dir
    shards.mkdir(parents=True, exist_ok=True)
    with open(shards / "chunk000.jsonl", "w", encoding="utf-8") as handle:
        for item in plan.items:
            result = ItemResult(index=item.index, key=item.key, row={"x": item.index})
            handle.write(json.dumps(result.to_dict()) + "\n")
    return coordinator, shards


def test_mutilated_journal_loses_only_the_torn_line(tmp_path) -> None:
    coordinator, shards = _journal_fixture(tmp_path)
    applied = mutilate_journal(
        shards, torn=True, foreign=True, rng=random.Random(41)
    )
    assert len(applied) == 3  # tear + foreign lines + trailing fragment
    have = coordinator._load_journaled()
    # the torn final line is gone; every intact line survives; none of the
    # three foreign lines (non-JSON, wrong shape, unknown key) leaks in
    assert sorted(have) == [0, 1, 2]
    assert all(have[index].key == coordinator.plan.items[index].key for index in have)


def test_untouched_journal_loads_fully(tmp_path) -> None:
    coordinator, shards = _journal_fixture(tmp_path)
    assert mutilate_journal(
        shards, torn=False, foreign=False, rng=random.Random(0)
    ) == []
    assert sorted(coordinator._load_journaled()) == [0, 1, 2, 3]


def test_mutilate_journal_on_empty_dir_is_a_noop(tmp_path) -> None:
    empty = tmp_path / "shards"
    empty.mkdir()
    assert mutilate_journal(empty, torn=True, foreign=True, rng=random.Random(0)) == []


# -- cache corruption vs the corrupt-entry-is-a-miss contract ---------------


def test_corrupted_cache_entries_read_as_misses(tmp_path) -> None:
    cache = RunCache(tmp_path)
    keys = [f"entry-{index}" for index in range(5)]
    for key in keys:
        assert cache.put(key, {"value": key})
    victims = corrupt_cache_entries(tmp_path, 2, random.Random(41))
    assert len(victims) == 2
    corrupted = {name.removesuffix(".json") for name in victims}
    for key in keys:
        payload = cache.get(key)
        if key in corrupted:
            assert payload is None  # corrupt == miss, never an exception
            assert cache.put(key, {"value": key})  # and the slot heals
            assert cache.get(key) == {"value": key}
        else:
            assert payload == {"value": key}


def test_corrupt_cache_entries_on_empty_cache_is_a_noop(tmp_path) -> None:
    assert corrupt_cache_entries(tmp_path, 3, random.Random(0)) == []


# -- ShapedLink: the real backend's twin of repro.sim.links -----------------


@pytest.mark.parametrize(
    "params, complaint",
    [
        ({"loss": 1.0}, "probability"),
        ({"loss": -0.1}, "probability"),
        ({"duplicate": 1.5}, "probability"),
        ({"delay": -1.0}, "non-negative"),
        ({"jitter": -0.5}, "non-negative"),
        ({"losss": 0.1}, "unknown link param"),
        ("loss=0.1", "mapping"),
    ],
)
def test_validate_link_params_rejects_nonsense(params, complaint) -> None:
    with pytest.raises(ConfigurationError, match=complaint):
        validate_link_params(params)


def test_validate_link_params_normalizes_defaults() -> None:
    out = validate_link_params({"loss": 0.1})
    assert out == {"loss": 0.1, "delay": 0.0, "jitter": 0.0, "duplicate": 0.0, "seed": 0}
    assert set(validate_link_params({})) == set(LINK_PARAM_KEYS)


class _FakeWriter:
    def __init__(self) -> None:
        self.frames: list[bytes] = []
        self.closed = False

    def write(self, frame: bytes) -> None:
        self.frames.append(frame)

    def is_closing(self) -> bool:
        return self.closed

    def close(self) -> None:
        self.closed = True


def _deliveries(seed: int, *, loss: float = 0.3, duplicate: float = 0.0) -> list[bytes]:
    writer = _FakeWriter()
    link = ShapedLink(
        writer, sender=0, receiver=1, loss=loss, duplicate=duplicate, seed=seed
    )
    for index in range(200):
        link.write(b"frame-%03d" % index)
    return writer.frames


def test_shaped_link_loss_is_seed_deterministic() -> None:
    first = _deliveries(41)
    assert first == _deliveries(41)  # same seed: identical drop pattern
    assert first != _deliveries(42)
    assert 0 < len(first) < 200  # some but not all frames survive loss=0.3


def test_shaped_link_rng_is_per_link_not_shared() -> None:
    writer_a, writer_b = _FakeWriter(), _FakeWriter()
    link_a = ShapedLink(writer_a, sender=0, receiver=1, loss=0.3, seed=41)
    link_b = ShapedLink(writer_b, sender=0, receiver=2, loss=0.3, seed=41)
    for index in range(200):
        frame = b"frame-%03d" % index
        link_a.write(frame)
        link_b.write(frame)
    assert writer_a.frames != writer_b.frames  # distinct streams per (s, r)


def test_shaped_link_duplication_writes_extra_copies() -> None:
    writer = _FakeWriter()
    link = ShapedLink(writer, sender=0, receiver=1, duplicate=0.5, seed=7)
    for index in range(100):
        link.write(b"frame-%03d" % index)
    assert link.duplicated > 0
    assert len(writer.frames) == 100 + link.duplicated
    assert link.dropped == 0


def test_shaped_link_delay_defers_the_write_via_the_loop() -> None:
    async def scenario() -> tuple[ShapedLink, _FakeWriter]:
        writer = _FakeWriter()
        link = ShapedLink(
            writer, sender=0, receiver=1, delay=0.5, jitter=0.5,
            time_scale=0.01, seed=3,
        )
        for index in range(10):
            link.write(b"frame-%03d" % index)
        assert writer.frames == []  # nothing lands synchronously
        await asyncio.sleep(0.05)  # > (delay + jitter) × time_scale
        return link, writer

    link, writer = asyncio.run(scenario())
    assert link.delayed == 10
    assert len(writer.frames) == 10


def test_shaped_link_does_not_write_to_a_closing_writer() -> None:
    writer = _FakeWriter()
    link = ShapedLink(writer, sender=0, receiver=1, seed=0)
    writer.closed = True
    link.write(b"frame")
    assert writer.frames == []
    assert link.is_closing()


# -- orchestrator timeouts are backend_params, not constants ----------------


def test_resolve_timeouts_defaults_and_overrides() -> None:
    assert resolve_timeouts({}) == (DEFAULT_READY_TIMEOUT, 20.0)
    assert resolve_timeouts({"ready_timeout": 45, "mesh_deadline": 90}) == (45.0, 90.0)


@pytest.mark.parametrize(
    "params", [{"ready_timeout": 0}, {"ready_timeout": -1}, {"mesh_deadline": 0}]
)
def test_resolve_timeouts_rejects_nonpositive(params) -> None:
    with pytest.raises(ConfigurationError, match="must be positive"):
        resolve_timeouts(params)


# -- one end-to-end campaign (fabric legs only) -----------------------------


def test_campaign_survives_its_own_chaos(tmp_path) -> None:
    """Seed 1's full fabric gauntlet: worker SIGKILL, coordinator crash,
    journal mutilation, cache corruption, resume, SIGSTOP stall — and the
    merged output still matches the serial reference bit for bit."""
    report = run_campaign(1, scratch=tmp_path / "scratch", kv=False, transport=False)
    assert isinstance(report, CampaignReport)
    failed = [invariant for invariant in report.invariants if not invariant.ok]
    assert report.ok, f"invariants failed: {[(i.name, i.detail) for i in failed]}"
    names = {invariant.name for invariant in report.invariants}
    assert {
        "coordinator_crash",
        "merge",
        "digests",
        "stall_detected",
        "stall_merge",
        "no_orphans",
        "no_temp_leaks",
    } <= names
    assert "kv_linearizable" not in names  # disabled legs draw no checks
    assert "transport_detection" not in names
    # chaos actually happened: the injected stall was observed and recovered
    assert report.stats["stall"]["stalled_workers"] >= 1
    assert report.stats["stall"]["worker_deaths"] >= 1
    # and the report replays: the embedded plan is the seed's plan
    assert report.plan == FaultPlan.from_seed(1).to_dict()
    assert json.dumps(report.to_dict())  # the report is JSON-serializable
