"""Integration tests for the process runtime, network, and simulation engine."""

from __future__ import annotations

import pytest

from repro.errors import ConfigurationError, SimulationError
from repro.identity import ProcessId
from repro.membership import anonymous_identities, unique_identities
from repro.sim import (
    AsynchronousTiming,
    CrashEvent,
    CrashSchedule,
    PartiallySynchronousTiming,
    ProcessProgram,
    Simulation,
    SynchronousTiming,
    SystemModel,
    build_system,
)


def p(index: int) -> ProcessId:
    return ProcessId(index)


class PingProgram(ProcessProgram):
    """Broadcasts one PING at start and records every PING it receives."""

    def setup(self, ctx):
        self.received = []
        ctx.on("PING", lambda msg: self.received.append(msg["sender_identity"]))
        ctx.spawn(lambda: self._main(ctx), name="main")

    def _main(self, ctx):
        ctx.broadcast("PING", sender_identity=ctx.identity)
        yield ctx.sleep(0.0)
        ctx.record("received_count", len(self.received))


class EchoCounterProgram(ProcessProgram):
    """Counts received HELLO messages and waits until it has seen `expected`."""

    def __init__(self, expected: int):
        self.expected = expected
        self.count = 0

    def setup(self, ctx):
        ctx.on("HELLO", self._on_hello)
        ctx.spawn(lambda: self._main(ctx), name="main")

    def _on_hello(self, msg):
        self.count += 1

    def _main(self, ctx):
        ctx.broadcast("HELLO")
        yield ctx.wait_until(lambda: self.count >= self.expected)
        ctx.record("saw_all", True)
        ctx.decide(self.count)


class PeriodicSenderProgram(ProcessProgram):
    """Broadcasts TICK every `period` time units, forever."""

    def __init__(self, period: float = 1.0):
        self.period = period

    def setup(self, ctx):
        ctx.spawn(lambda: self._loop(ctx), name="loop")

    def _loop(self, ctx):
        while True:
            ctx.broadcast("TICK", identity=ctx.identity)
            yield ctx.sleep(self.period)


class SyncRoundProgram(ProcessProgram):
    """Figure-7-style skeleton: broadcast an IDENT each synchronous step."""

    def __init__(self, rounds: int):
        self.rounds = rounds
        self.per_round_counts = []
        self._current = []

    def setup(self, ctx):
        ctx.on("IDENT", lambda msg: self._current.append(msg["identity"]))
        ctx.spawn(lambda: self._main(ctx), name="main")

    def _main(self, ctx):
        for _ in range(self.rounds):
            self._current = []
            ctx.broadcast("IDENT", identity=ctx.identity)
            yield ctx.next_synchronous_step()
            self.per_round_counts.append(len(self._current))
        ctx.record("per_round_counts", tuple(self.per_round_counts))


def run_system(membership, timing, factory, *, crash_schedule=None, until=100.0, seed=1,
               detectors=None, stop_when=None, model=None):
    system = build_system(
        membership=membership,
        timing=timing,
        program_factory=factory,
        crash_schedule=crash_schedule,
        detectors=detectors,
        seed=seed,
        model=model,
    )
    simulation = Simulation(system)
    trace = simulation.run(until=until, stop_when=stop_when)
    return simulation, trace


class TestBroadcastDelivery:
    def test_every_process_receives_every_ping_including_its_own(self):
        membership = unique_identities(4)
        simulation, trace = run_system(
            membership,
            AsynchronousTiming(min_latency=0.1, max_latency=1.0),
            lambda pid, identity: PingProgram(),
            until=50.0,
        )
        for process in membership.processes:
            # 4 broadcasts x delivery to each process = each process gets 4 PINGs.
            program_received = trace.final_value(process, "received_count")
            # received_count is recorded right after start; count deliveries instead.
            assert program_received is not None
        assert trace.broadcasts_by_kind()["PING"] == 4
        assert trace.deliveries_by_kind()["PING"] == 16

    def test_receiver_cannot_identify_sender_beyond_payload(self):
        membership = anonymous_identities(3)
        simulation, trace = run_system(
            membership,
            AsynchronousTiming(max_latency=1.0),
            lambda pid, identity: PingProgram(),
            until=10.0,
        )
        # All payload identities are the shared anonymous identity.
        assert trace.deliveries_by_kind()["PING"] == 9

    def test_wait_until_unblocks_on_message_arrival(self):
        membership = unique_identities(3)
        simulation, trace = run_system(
            membership,
            AsynchronousTiming(min_latency=0.5, max_latency=2.0),
            lambda pid, identity: EchoCounterProgram(expected=3),
            until=50.0,
        )
        for process in membership.processes:
            assert trace.final_value(process, "saw_all") is True
            assert trace.decision_of(process).value == 3

    def test_stop_when_ends_run_early(self):
        membership = unique_identities(3)
        simulation, trace = run_system(
            membership,
            AsynchronousTiming(min_latency=0.5, max_latency=1.0),
            lambda pid, identity: EchoCounterProgram(expected=3),
            until=1000.0,
            stop_when=lambda sim: sim.all_correct_decided(),
        )
        assert trace.end_time < 1000.0
        assert simulation.all_correct_decided()

    def test_deterministic_for_fixed_seed(self):
        membership = unique_identities(4)
        _, first = run_system(
            membership,
            AsynchronousTiming(),
            lambda pid, identity: EchoCounterProgram(expected=4),
            seed=7,
        )
        _, second = run_system(
            membership,
            AsynchronousTiming(),
            lambda pid, identity: EchoCounterProgram(expected=4),
            seed=7,
        )
        assert {k: v.time for k, v in first.decisions.items()} == {
            k: v.time for k, v in second.decisions.items()
        }

    def test_different_seed_changes_latencies(self):
        membership = unique_identities(4)
        _, first = run_system(
            membership, AsynchronousTiming(), lambda pid, identity: EchoCounterProgram(4), seed=1
        )
        _, second = run_system(
            membership, AsynchronousTiming(), lambda pid, identity: EchoCounterProgram(4), seed=2
        )
        assert {k: v.time for k, v in first.decisions.items()} != {
            k: v.time for k, v in second.decisions.items()
        }


class TestCrashes:
    def test_crashed_process_stops_broadcasting(self):
        membership = unique_identities(3)
        schedule = CrashSchedule.at_times({p(0): 5.0})
        simulation, trace = run_system(
            membership,
            AsynchronousTiming(min_latency=0.1, max_latency=0.2),
            lambda pid, identity: PeriodicSenderProgram(period=1.0),
            crash_schedule=schedule,
            until=20.0,
        )
        # p0 broadcasts at t=0..5 (6 ticks, its tick at the crash instant still
        # goes out because crashes apply after same-time process activity); the
        # others broadcast at t=0..20 inclusive (21 ticks each).
        assert trace.broadcasts_by_kind()["TICK"] == 6 + 21 + 21
        assert trace.crashes[p(0)] == 5.0

    def test_crashed_process_ignores_deliveries_and_does_not_decide(self):
        membership = unique_identities(3)
        schedule = CrashSchedule.at_times({p(2): 0.1})
        simulation, trace = run_system(
            membership,
            AsynchronousTiming(min_latency=0.5, max_latency=1.0),
            lambda pid, identity: EchoCounterProgram(expected=2),
            crash_schedule=schedule,
            until=50.0,
        )
        assert not trace.decided(p(2))
        assert trace.decided(p(0)) and trace.decided(p(1))

    def test_partial_broadcast_on_crash(self):
        membership = unique_identities(4)
        # p0 crashes at exactly t=0, the moment it broadcasts; half the copies survive.
        schedule = CrashSchedule(
            (CrashEvent(p(0), 0.0, partial_broadcast_fraction=0.5),)
        )
        simulation, trace = run_system(
            membership,
            AsynchronousTiming(min_latency=0.1, max_latency=0.2),
            lambda pid, identity: PingProgram(),
            crash_schedule=schedule,
            until=10.0,
        )
        # 3 full broadcasts of 4 copies + 1 partial broadcast of 2 copies.
        assert trace.message_copies_sent == 3 * 4 + 2

    def test_cannot_crash_every_process(self):
        membership = unique_identities(2)
        with pytest.raises(ConfigurationError):
            run_system(
                membership,
                AsynchronousTiming(),
                lambda pid, identity: PingProgram(),
                crash_schedule=CrashSchedule.at_times({p(0): 1.0, p(1): 1.0}),
            )


class TestSynchronousSteps:
    def test_each_round_sees_all_alive_processes(self):
        membership = unique_identities(3)
        programs = {}

        def factory(pid, identity):
            programs[pid] = SyncRoundProgram(rounds=4)
            return programs[pid]

        simulation, trace = run_system(
            membership, SynchronousTiming(step=1.0), factory, until=10.0
        )
        for process in membership.processes:
            counts = trace.final_value(process, "per_round_counts")
            assert counts == (3, 3, 3, 3)

    def test_crashed_process_missing_from_later_rounds(self):
        membership = unique_identities(3)
        schedule = CrashSchedule.at_times({p(2): 1.5})

        simulation, trace = run_system(
            membership,
            SynchronousTiming(step=1.0),
            lambda pid, identity: SyncRoundProgram(rounds=4),
            crash_schedule=schedule,
            until=10.0,
        )
        for process in (p(0), p(1)):
            counts = trace.final_value(process, "per_round_counts")
            assert counts[0] == 3  # everyone participates in step 0
            assert counts[-1] == 2  # p2 is gone by the last step

    def test_next_sync_step_requires_synchronous_timing(self):
        membership = unique_identities(2)
        with pytest.raises(SimulationError):
            run_system(
                membership,
                AsynchronousTiming(),
                lambda pid, identity: SyncRoundProgram(rounds=1),
                until=5.0,
            )


class TestSystemModelValidation:
    def test_as_model_requires_unique_ids(self):
        with pytest.raises(ConfigurationError):
            build_system(
                membership=anonymous_identities(3),
                timing=AsynchronousTiming(),
                program_factory=lambda pid, identity: PingProgram(),
                model=SystemModel.AS,
            )

    def test_aas_model_requires_anonymous_ids(self):
        with pytest.raises(ConfigurationError):
            build_system(
                membership=unique_identities(3),
                timing=AsynchronousTiming(),
                program_factory=lambda pid, identity: PingProgram(),
                model=SystemModel.AAS,
            )

    def test_model_inferred_from_timing(self):
        system = build_system(
            membership=unique_identities(3),
            timing=PartiallySynchronousTiming(gst=5.0),
            program_factory=lambda pid, identity: PingProgram(),
        )
        assert system.model is SystemModel.HPS
        assert "HPS" in system.describe()

    def test_hss_requires_synchronous_timing(self):
        with pytest.raises(ConfigurationError):
            build_system(
                membership=unique_identities(3),
                timing=AsynchronousTiming(),
                program_factory=lambda pid, identity: PingProgram(),
                model=SystemModel.HSS,
            )

    def test_has_rejects_synchronous_timing(self):
        with pytest.raises(ConfigurationError):
            build_system(
                membership=unique_identities(3),
                timing=SynchronousTiming(),
                program_factory=lambda pid, identity: PingProgram(),
                model=SystemModel.HAS,
            )


class TestPartialSynchrony:
    def test_messages_after_gst_arrive_within_delta(self):
        membership = unique_identities(3)
        timing = PartiallySynchronousTiming(gst=0.0, delta=1.0, min_latency=0.1)
        simulation, trace = run_system(
            membership,
            timing,
            lambda pid, identity: EchoCounterProgram(expected=3),
            until=20.0,
        )
        for process in membership.processes:
            decision = trace.decision_of(process)
            assert decision.time <= 2.0  # broadcast at 0, delivery <= delta

    def test_messages_before_gst_can_be_lost(self):
        membership = unique_identities(2)
        timing = PartiallySynchronousTiming(
            gst=1_000.0, delta=1.0, pre_gst_loss=1.0, pre_gst_max_latency=2_000.0
        )
        simulation, trace = run_system(
            membership,
            timing,
            lambda pid, identity: PingProgram(),
            until=10.0,
        )
        assert trace.message_copies_delivered == 0
