"""Unit tests for the Wing & Gong-style KV linearizability checker."""

from __future__ import annotations

from repro.identity import ProcessId
from repro.sim.trace import RunTrace
from repro.workloads.kv import (
    KVOperation,
    check_history,
    check_kv_linearizable,
    history_from_trace,
)


def op(
    rid,
    kind,
    key,
    invoke,
    response,
    *,
    args=(),
    status="ok",
    value=None,
    version=None,
):
    """A completed (or, with ``response=None``, pending) operation."""
    return KVOperation(
        request_id=rid,
        op=kind,
        key=key,
        args=tuple(args),
        invoke=invoke,
        response=response,
        status=None if response is None else status,
        value=None if response is None else value,
        version=version,
    )


class TestValidHistories:
    def test_empty_history(self):
        result = check_history([])
        assert result.ok and result.ops_checked == 0

    def test_sequential_set_then_get(self):
        history = [
            op("a", "SET", "k", 0.0, 1.0, args=("v1",), value="v1"),
            op("b", "GET", "k", 2.0, 3.0, value="v1"),
        ]
        assert check_history(history).ok

    def test_concurrent_get_may_read_old_value(self):
        history = [
            op("a", "SET", "k", 0.0, 10.0, args=("v1",), value="v1"),
            op("b", "GET", "k", 1.0, 2.0, value=None),  # linearized before the SET
        ]
        assert check_history(history).ok

    def test_cas_chain(self):
        history = [
            op("a", "CAS", "k", 0.0, 1.0, args=(None, "v1"), value="v1"),
            op("b", "GET", "k", 2.0, 3.0, value="v1"),
            op("c", "CAS", "k", 4.0, 5.0, args=(None, "v2"), status="fail", value="v1"),
            op("d", "CAS", "k", 6.0, 7.0, args=("v1", "v2"), value="v2"),
        ]
        assert check_history(history).ok

    def test_delete_then_miss(self):
        history = [
            op("a", "SET", "k", 0.0, 1.0, args=("v1",), value="v1"),
            op("b", "DEL", "k", 2.0, 3.0),
            op("c", "GET", "k", 4.0, 5.0, value=None),
            op("d", "DEL", "k", 6.0, 7.0, status="miss"),
        ]
        assert check_history(history).ok

    def test_keys_are_checked_independently(self):
        history = [
            op("a", "SET", "x", 0.0, 1.0, args=("v1",), value="v1"),
            op("b", "SET", "y", 0.5, 1.5, args=("w1",), value="w1"),
            op("c", "GET", "x", 2.0, 3.0, value="v1"),
            op("d", "GET", "y", 2.0, 3.0, value="w1"),
        ]
        result = check_history(history)
        assert result.ok and result.ops_checked == 4


class TestViolations:
    def test_stale_read_after_completed_set(self):
        history = [
            op("a", "SET", "k", 0.0, 1.0, args=("v1",), value="v1"),
            op("b", "GET", "k", 2.0, 3.0, value=None),  # must have seen v1
        ]
        result = check_history(history)
        assert not result.ok
        assert result.violations == ("k",)

    def test_lost_update(self):
        history = [
            op("a", "SET", "k", 0.0, 1.0, args=("v1",), value="v1"),
            op("b", "SET", "k", 2.0, 3.0, args=("v2",), value="v2"),
            op("c", "GET", "k", 4.0, 5.0, value="v1"),  # v2 overwrote v1
        ]
        assert not check_history(history).ok

    def test_cas_ok_against_never_written_value(self):
        history = [
            op("a", "SET", "k", 0.0, 1.0, args=("v2",), value="v2"),
            op("b", "CAS", "k", 2.0, 3.0, args=("v0", "v1"), value="v1"),
        ]
        assert not check_history(history).ok

    def test_violation_in_one_key_does_not_blame_others(self):
        history = [
            op("a", "SET", "x", 0.0, 1.0, args=("v1",), value="v1"),
            op("b", "GET", "x", 2.0, 3.0, value=None),
            op("c", "SET", "y", 0.0, 1.0, args=("w1",), value="w1"),
            op("d", "GET", "y", 2.0, 3.0, value="w1"),
        ]
        result = check_history(history)
        assert result.violations == ("x",)


class TestIncompleteOperations:
    def test_pending_set_may_have_taken_effect(self):
        history = [
            op("a", "SET", "k", 0.0, None, args=("v1",)),
            op("b", "GET", "k", 5.0, 6.0, value="v1"),
        ]
        assert check_history(history).ok

    def test_pending_set_may_never_take_effect(self):
        history = [
            op("a", "SET", "k", 0.0, None, args=("v1",)),
            op("b", "GET", "k", 5.0, 6.0, value=None),
        ]
        assert check_history(history).ok

    def test_pending_get_constrains_nothing(self):
        history = [
            op("a", "GET", "k", 0.0, None),
            op("b", "SET", "k", 1.0, 2.0, args=("v1",), value="v1"),
        ]
        result = check_history(history)
        assert result.ok

    def test_pending_cas_with_false_expectation_cannot_take_effect(self):
        history = [
            op("a", "CAS", "k", 0.0, None, args=("v0", "v1")),  # k was never v0
            op("b", "GET", "k", 5.0, 6.0, value="v1"),
        ]
        assert not check_history(history).ok


class TestBudget:
    def test_budget_exhaustion_is_undecided_not_ok(self):
        # 14 mutually concurrent completed SETs: the search space is far
        # beyond a 5-state budget, and none of the orders can be completed
        # before the budget trips.
        history = [
            op(f"r{i}", "SET", "k", 0.0, 100.0, args=(f"v{i}",), value=f"v{i}")
            for i in range(14)
        ] + [op("g", "GET", "k", 200.0, 201.0, value="v0")]
        result = check_history(history, max_states_per_key=5)
        assert not result.ok
        assert result.undecided == ("k",)
        assert result.violations == ()


class TestTraceAdapter:
    def test_history_pairs_op_and_done_records(self):
        trace = RunTrace()
        client = ProcessId(7)
        trace.record(client, "kv.op", ("c0:0", "SET", "k", ("v1",)), 1.0)
        trace.record(client, "kv.done", ("c0:0", "ok", "v1", 1), 4.0)
        trace.record(client, "kv.op", ("c0:1", "GET", "k", ()), 5.0)
        history = history_from_trace(trace)
        assert [operation.request_id for operation in history] == ["c0:0", "c0:1"]
        assert history[0].completed and history[0].response == 4.0
        assert not history[1].completed

    def test_check_kv_linearizable_on_trace(self):
        trace = RunTrace()
        client = ProcessId(7)
        trace.record(client, "kv.op", ("c0:0", "SET", "k", ("v1",)), 1.0)
        trace.record(client, "kv.done", ("c0:0", "ok", "v1", 1), 2.0)
        trace.record(client, "kv.op", ("c0:1", "GET", "k", ()), 3.0)
        trace.record(client, "kv.done", ("c0:1", "ok", None, 0), 4.0)  # stale!
        result = check_kv_linearizable(trace, pattern=None)
        assert not result.ok
        assert result.stabilization_time is None  # duck-types the CHECKS result
