"""Adversarial and fault-injection tests.

Consensus safety (validity + agreement) must never depend on the failure
detector behaving well — only termination may.  These tests feed the
algorithms deliberately broken detectors and adversarial schedules, and also
check that the validators and property checkers actually catch broken
*algorithms* (so a regression in the real algorithms could not hide behind a
permissive harness).
"""

from __future__ import annotations

import pytest

from repro.consensus import (
    HOmegaHSigmaConsensus,
    HOmegaMajorityConsensus,
    validate_consensus,
)
from repro.consensus.base import ConsensusProgram
from repro.detectors import HOmegaOracle, HSigmaOracle, check_hsigma
from repro.detectors.views import HOmegaView, HSigmaView
from repro.identity import IdentityMultiset, ProcessId
from repro.membership import grouped_identities
from repro.sim import AsynchronousTiming, CrashSchedule, Simulation, build_system
from repro.sim.failures import FailurePattern


def p(index: int) -> ProcessId:
    return ProcessId(index)


# ----------------------------------------------------------------------
# Broken detectors (safety of consensus must survive them)
# ----------------------------------------------------------------------
class NeverStableHOmega:
    """An HΩ 'detector' that keeps electing different, often wrong, leaders."""

    def __init__(self, services):
        self._membership = services.membership
        self._clock = services.clock
        # Wake blocked processes periodically so their wait conditions are
        # re-evaluated against the ever-changing output.
        boundary = 5.0
        while boundary < 400.0:
            services.schedule(boundary, services.poke_all)
            boundary += 5.0

    def view_for(self, process):
        identities = sorted(self._membership.identity_multiset().support(), key=repr)

        def read_pair():
            window = int(self._clock.now // 5)
            identity = identities[(process.index + window) % len(identities)]
            multiplicity = 1 + (window + process.index) % self._membership.size
            return identity, multiplicity

        return HOmegaView(read_pair)


class EmptyHSigma:
    """An HΣ 'detector' that never provides any quorum (blocks liveness only)."""

    def __init__(self, services):
        self._services = services

    def view_for(self, process):
        return HSigmaView(lambda: frozenset(), lambda: frozenset())


def run_with_detectors(membership, factory, detectors, *, crashes=None, seed=3, until=200.0):
    proposals = {process: f"v{process.index}" for process in membership.processes}
    schedule = CrashSchedule.at_times(crashes or {})
    system = build_system(
        membership=membership,
        timing=AsynchronousTiming(min_latency=0.1, max_latency=2.0),
        program_factory=lambda pid, identity: factory(proposals[pid]),
        crash_schedule=schedule,
        detectors=detectors,
        seed=seed,
    )
    simulation = Simulation(system)
    trace = simulation.run(until=until, stop_when=lambda sim: sim.all_correct_decided())
    pattern = FailurePattern(membership, schedule)
    verdict = validate_consensus(trace, pattern, proposals, require_termination=False)
    return verdict


class TestConsensusSafetyUnderBrokenDetectors:
    def test_figure8_safe_with_never_stable_homega(self):
        membership = grouped_identities([2, 2, 1])
        for seed in (1, 2, 3, 4):
            verdict = run_with_detectors(
                membership,
                lambda proposal: HOmegaMajorityConsensus(proposal, n=membership.size),
                {"HOmega": NeverStableHOmega},
                crashes={p(4): 10.0},
                seed=seed,
            )
            # Termination is not guaranteed (the detector never stabilises),
            # but validity and agreement must hold in whatever was decided.
            assert verdict.validity_ok and verdict.agreement_ok, verdict.violations

    def test_figure9_safe_with_broken_detectors(self):
        membership = grouped_identities([2, 2])
        for seed in (1, 2):
            verdict = run_with_detectors(
                membership,
                lambda proposal: HOmegaHSigmaConsensus(proposal),
                {"HOmega": NeverStableHOmega, "HSigma": EmptyHSigma},
                seed=seed,
            )
            assert verdict.validity_ok and verdict.agreement_ok, verdict.violations

    def test_figure9_with_empty_hsigma_never_decides(self):
        # With no quorums ever available and nobody else deciding, Phase 1 can
        # never complete: the algorithm must block rather than guess.
        membership = grouped_identities([2, 2])
        verdict = run_with_detectors(
            membership,
            lambda proposal: HOmegaHSigmaConsensus(proposal),
            {
                "HOmega": lambda services: HOmegaOracle(services, stabilization_time=5.0),
                "HSigma": EmptyHSigma,
            },
            seed=9,
        )
        assert not verdict.decided_values
        assert verdict.validity_ok and verdict.agreement_ok


# ----------------------------------------------------------------------
# Broken algorithms (the harness must catch them)
# ----------------------------------------------------------------------
class SelfishConsensus(ConsensusProgram):
    """A broken 'consensus' that simply decides its own proposal immediately."""

    def run_round(self, ctx, round_number):
        self.decide(ctx, self.proposal)
        return
        yield  # pragma: no cover - keeps this a generator

    def _on_decide(self, ctx, message):
        # Deliberately ignore other decisions: a real algorithm must not.
        return


class TestValidatorsCatchBrokenAlgorithms:
    def test_selfish_consensus_breaks_agreement_and_is_caught(self):
        membership = grouped_identities([2, 2, 1])
        verdict = run_with_detectors(
            membership,
            lambda proposal: SelfishConsensus(proposal),
            {"HOmega": lambda services: HOmegaOracle(services, stabilization_time=5.0)},
            seed=2,
        )
        assert not verdict.agreement_ok
        assert verdict.validity_ok  # each decided value was proposed…
        assert not verdict.ok       # …but they are not all equal.

    def test_broken_hsigma_oracle_is_caught_by_property_checker(self):
        # A detector whose quorums are per-process singletons cannot satisfy
        # the HΣ safety property; the checker must flag it.
        membership = grouped_identities([2, 2])

        class SingletonHSigma:
            def __init__(self, services):
                self._membership = services.membership

            def view_for(self, process):
                identity = self._membership.identity_of(process)
                label = f"self-{process.index}"
                quorum = IdentityMultiset([identity])
                return HSigmaView(
                    lambda: frozenset({(label, quorum)}), lambda: frozenset({label})
                )

        from repro.detectors.probe import DetectorProbeProgram, hsigma_probes

        schedule = CrashSchedule.none()
        system = build_system(
            membership=membership,
            timing=AsynchronousTiming(min_latency=0.1, max_latency=1.0),
            program_factory=lambda pid, identity: DetectorProbeProgram(
                hsigma_probes(), period=1.0
            ),
            detectors={"HSigma": SingletonHSigma},
            crash_schedule=schedule,
            seed=1,
        )
        trace = Simulation(system).run(until=20.0)
        result = check_hsigma(trace, FailurePattern(membership, schedule))
        assert not result.ok
        assert any("disjoint" in violation for violation in result.violations)
