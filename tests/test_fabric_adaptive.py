"""Adaptive seed allocation: CI math, early stopping, budget reallocation."""

from __future__ import annotations

import math
import random

import pytest

from repro.fabric import adaptive_sweep, confidence_interval
from repro.fabric.adaptive import NORMAL_MIN_SAMPLES, AdaptiveError


# A deterministic "noisy metric": mean `loc`, spread `scale`, reproducible
# from the seed alone.  Module-level so Engine.sweep treats it like any other
# sweep function.
def noisy_metric(config: dict) -> dict:
    rng = random.Random(config["seed"])
    value = config["loc"] + config["scale"] * (rng.random() - 0.5)
    return {"value": value}


# ---------------------------------------------------------------------------
# confidence_interval
# ---------------------------------------------------------------------------
def test_ci_degenerate_and_tiny_samples() -> None:
    assert confidence_interval([]) == (pytest.approx(math.nan, nan_ok=True), math.inf)
    assert confidence_interval([4.2]) == (4.2, math.inf)
    mean, half_width = confidence_interval([10.0] * 12)
    assert (mean, half_width) == (10.0, 0.0)


def test_ci_normal_matches_hand_computation() -> None:
    values = [float(v) for v in range(1, 13)]  # n=12 >= NORMAL_MIN_SAMPLES
    assert len(values) >= NORMAL_MIN_SAMPLES
    mean, half_width = confidence_interval(values, confidence=0.95)
    assert mean == pytest.approx(6.5)
    # z_{0.975} * s / sqrt(n) with s = stdev([1..12]) = sqrt(13)
    assert half_width == pytest.approx(1.959964 * math.sqrt(13.0 / 12.0), rel=1e-5)


def test_ci_bootstrap_is_deterministic_and_covers_the_mean() -> None:
    values = [9.0, 10.5, 10.0, 11.0, 9.5]  # below NORMAL_MIN_SAMPLES: bootstrap
    first = confidence_interval(values, seed=7)
    second = confidence_interval(values, seed=7)
    assert first == second
    mean, half_width = first
    assert mean == pytest.approx(10.0)
    assert 0.0 < half_width < max(values) - min(values)
    # the bootstrap seed never moves the centre (only the interval)
    other_mean, _ = confidence_interval(values, seed=8)
    assert other_mean == mean


def test_ci_rejects_bad_arguments() -> None:
    with pytest.raises(AdaptiveError):
        confidence_interval([1.0, 2.0], confidence=1.0)
    with pytest.raises(AdaptiveError):
        confidence_interval([1.0, 2.0], method="student-t")


# ---------------------------------------------------------------------------
# adaptive_sweep
# ---------------------------------------------------------------------------
def test_adaptive_stops_early_and_keeps_medians_inside_ci() -> None:
    cells = [{"loc": 10.0, "scale": 0.1}, {"loc": 20.0, "scale": 0.2}]
    report = adaptive_sweep(
        noisy_metric, cells, metric="value", max_seeds_per_cell=32, rel_tol=0.05
    )
    assert report.all_converged
    assert report.total_runs < report.fixed_grid_runs  # demonstrably saves work
    assert report.runs_saved == report.fixed_grid_runs - report.total_runs
    for cell in report.cells:
        assert cell.seeds_used == len(cell.values) == len(cell.rows)
        assert abs(cell.median - cell.mean) <= cell.half_width
        assert cell.half_width <= 0.05 * abs(cell.mean)
    assert len(report.rows) == report.total_runs


def test_adaptive_reallocates_budget_to_noisy_cells() -> None:
    cells = [{"loc": 10.0, "scale": 0.01}, {"loc": 10.0, "scale": 8.0}]
    report = adaptive_sweep(
        noisy_metric,
        cells,
        metric="value",
        max_seeds_per_cell=64,
        abs_tol=0.5,
        budget=40,
    )
    quiet, noisy = report.cells
    assert quiet.converged
    assert noisy.seeds_used > quiet.seeds_used  # the budget went where the noise is
    assert report.total_runs <= 40


def test_adaptive_runs_are_reproducible() -> None:
    cells = [{"loc": 5.0, "scale": 1.0}, {"loc": 7.0, "scale": 2.0}]
    kwargs = dict(metric="value", max_seeds_per_cell=16, rel_tol=0.1, base_seed=11)
    first = adaptive_sweep(noisy_metric, cells, **kwargs)
    second = adaptive_sweep(noisy_metric, cells, **kwargs)
    assert first.summary() == second.summary()
    assert first.rows == second.rows
    # convergence order cannot perturb a cell's seed sequence
    seeds = [row["seed"] for row in first.cells[1].rows]
    assert seeds == [11 + 1 * 16 + k for k in range(len(seeds))]


def test_adaptive_budget_exhaustion_reports_unconverged_cells() -> None:
    cells = [{"loc": 0.0, "scale": 50.0}]
    report = adaptive_sweep(
        noisy_metric, cells, metric="value", max_seeds_per_cell=8, abs_tol=1e-9
    )
    assert report.total_runs == 8  # grid cap reached
    assert not report.all_converged
    assert not math.isnan(report.cells[0].median)


def test_adaptive_rejects_bad_configurations() -> None:
    with pytest.raises(AdaptiveError, match="abs_tol"):
        adaptive_sweep(noisy_metric, [{"loc": 1.0, "scale": 1.0}], metric="value")
    with pytest.raises(AdaptiveError, match="seed"):
        adaptive_sweep(
            noisy_metric, [{"loc": 1.0, "seed": 3}], metric="value", abs_tol=1.0
        )
    with pytest.raises(AdaptiveError, match="no cells"):
        adaptive_sweep(noisy_metric, [], metric="value", abs_tol=1.0)
    with pytest.raises(AdaptiveError, match="missing or non-numeric"):
        adaptive_sweep(
            noisy_metric,
            [{"loc": 1.0, "scale": 1.0}],
            metric="no_such_metric",
            abs_tol=1.0,
        )
