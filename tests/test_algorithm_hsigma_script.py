"""Tests for the Figure 7 (HΣ in HSS) and Figure 3 (ℰ in AS) implementations."""

from __future__ import annotations

import pytest

from repro.algorithms import HSigmaSynchronousProgram, ScriptAliveProgram
from repro.detectors import check_hsigma, check_script_e
from repro.detectors.base import OutputKeys
from repro.identity import IdentityMultiset, ProcessId
from repro.membership import anonymous_identities, grouped_identities, unique_identities
from repro.sim import (
    AsynchronousTiming,
    CrashSchedule,
    Simulation,
    SynchronousTiming,
    build_system,
)
from repro.sim.failures import FailurePattern

KEYS = OutputKeys()


def p(index: int) -> ProcessId:
    return ProcessId(index)


def run_hsigma(membership, *, crashes=None, steps=12, seed=5):
    schedule = CrashSchedule.at_times(crashes or {})
    system = build_system(
        membership=membership,
        timing=SynchronousTiming(step=1.0),
        program_factory=lambda pid, identity: HSigmaSynchronousProgram(steps=steps),
        crash_schedule=schedule,
        seed=seed,
    )
    simulation = Simulation(system)
    trace = simulation.run(until=steps + 2.0)
    return trace, FailurePattern(membership, schedule)


class TestHSigmaSynchronous:
    def test_no_crash_all_properties(self, paper_example_membership):
        trace, pattern = run_hsigma(paper_example_membership)
        result = check_hsigma(trace, pattern)
        assert result.ok, result.violations

    def test_with_crashes(self):
        membership = grouped_identities([2, 2, 2])
        trace, pattern = run_hsigma(membership, crashes={p(1): 3.4, p(4): 6.2})
        result = check_hsigma(trace, pattern)
        assert result.ok, result.violations

    def test_majority_of_failures(self):
        membership = grouped_identities([3, 2])
        trace, pattern = run_hsigma(
            membership, crashes={p(0): 2.2, p(1): 3.7, p(3): 5.1}, steps=15
        )
        result = check_hsigma(trace, pattern)
        assert result.ok, result.violations

    def test_anonymous_membership(self):
        membership = anonymous_identities(4)
        trace, pattern = run_hsigma(membership, crashes={p(2): 4.5})
        result = check_hsigma(trace, pattern)
        assert result.ok, result.violations

    def test_quora_eventually_contain_correct_multiset(self):
        membership = grouped_identities([2, 1])
        trace, pattern = run_hsigma(membership, crashes={p(0): 3.5})
        correct_multiset = pattern.correct_identity_multiset()
        for process in sorted(pattern.correct):
            final_quora = trace.final_value(process, KEYS.H_QUORA)
            labels = {label for label, _ in final_quora}
            assert correct_multiset in labels

    def test_labels_are_monotonic_per_process(self, paper_example_membership):
        trace, pattern = run_hsigma(paper_example_membership, crashes={p(1): 4.5})
        for process in paper_example_membership.processes:
            series = [value for _, value in trace.values_of(process, KEYS.H_LABELS)]
            for earlier, later in zip(series, series[1:]):
                assert earlier <= later

    def test_hsigma_view(self):
        program = HSigmaSynchronousProgram()
        view = program.hsigma_view()
        assert view.h_quora == frozenset()
        label = IdentityMultiset(["A"])
        program.h_quora = frozenset({(label, label)})
        program.h_labels = frozenset({label})
        assert view.h_quora == frozenset({(label, label)})
        assert view.h_labels == frozenset({label})


class TestScriptAlive:
    def run_script(self, membership, *, crashes=None, until=60.0, seed=9):
        schedule = CrashSchedule.at_times(crashes or {})
        system = build_system(
            membership=membership,
            timing=AsynchronousTiming(min_latency=0.2, max_latency=2.0),
            program_factory=lambda pid, identity: ScriptAliveProgram(resend_period=1.0),
            crash_schedule=schedule,
            seed=seed,
        )
        simulation = Simulation(system)
        trace = simulation.run(until=until)
        return trace, FailurePattern(membership, schedule)

    def test_correct_identifiers_reach_the_prefix(self):
        membership = unique_identities(5)
        trace, pattern = self.run_script(membership, crashes={p(1): 15.0, p(4): 20.0})
        result = check_script_e(trace, pattern)
        assert result.ok, result.violations

    def test_no_crash_everyone_in_prefix(self):
        membership = unique_identities(4)
        trace, pattern = self.run_script(membership)
        result = check_script_e(trace, pattern)
        assert result.ok, result.violations

    def test_faulty_identifier_sinks_to_the_back(self):
        membership = unique_identities(3)
        trace, pattern = self.run_script(membership, crashes={p(0): 10.0})
        for process in sorted(pattern.correct):
            final = trace.final_value(process, KEYS.SCRIPT_E_ALIVE)
            assert final[-1] == "id0"

    def test_rejects_non_positive_period(self):
        with pytest.raises(ValueError):
            ScriptAliveProgram(resend_period=0)

    def test_script_e_view(self):
        program = ScriptAliveProgram()
        view = program.script_e_view()
        program.alive = ["b", "a"]
        assert view.alive == ("b", "a")
        assert view.rank("b") == 1
        assert view.rank("missing") == float("inf")
