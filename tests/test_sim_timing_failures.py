"""Tests for timing models, crash schedules, and failure patterns."""

from __future__ import annotations

import random

import pytest
from hypothesis import given
from hypothesis import strategies as st

from repro.errors import ConfigurationError
from repro.identity import IdentityMultiset, ProcessId
from repro.membership import Membership, unique_identities
from repro.sim.failures import CrashEvent, CrashSchedule, FailurePattern, crash_free
from repro.sim.timing import (
    AsynchronousTiming,
    PartiallySynchronousTiming,
    SynchronousTiming,
)


def p(index: int) -> ProcessId:
    return ProcessId(index)


class TestAsynchronousTiming:
    def test_delivery_within_bounds(self):
        timing = AsynchronousTiming(min_latency=1.0, max_latency=2.0)
        rng = random.Random(0)
        for _ in range(50):
            delivered = timing.delivery_time(p(0), p(1), sent_at=10.0, rng=rng)
            assert 11.0 <= delivered <= 12.0

    def test_never_loses_messages(self):
        timing = AsynchronousTiming()
        rng = random.Random(1)
        assert all(
            timing.delivery_time(p(0), p(1), 0.0, rng) is not None for _ in range(100)
        )

    def test_validation(self):
        with pytest.raises(ConfigurationError):
            AsynchronousTiming(min_latency=5.0, max_latency=1.0)
        with pytest.raises(ConfigurationError):
            AsynchronousTiming(min_step=2.0, max_step=1.0)

    def test_step_delay_zero_by_default(self):
        timing = AsynchronousTiming()
        assert timing.step_delay(p(0), 0.0, random.Random(0)) == 0.0

    def test_step_delay_bounded_when_configured(self):
        timing = AsynchronousTiming(min_step=0.1, max_step=0.5)
        rng = random.Random(2)
        for _ in range(20):
            assert 0.1 <= timing.step_delay(p(0), 0.0, rng) <= 0.5


class TestPartiallySynchronousTiming:
    def test_after_gst_delivery_within_delta(self):
        timing = PartiallySynchronousTiming(gst=10.0, delta=2.0, min_latency=0.5)
        rng = random.Random(0)
        for _ in range(100):
            delivered = timing.delivery_time(p(0), p(1), sent_at=15.0, rng=rng)
            assert delivered is not None
            assert 15.5 <= delivered <= 17.0

    def test_after_gst_never_lost(self):
        timing = PartiallySynchronousTiming(gst=10.0, delta=2.0, pre_gst_loss=1.0)
        rng = random.Random(0)
        assert all(
            timing.delivery_time(p(0), p(1), 10.0, rng) is not None for _ in range(50)
        )

    def test_before_gst_may_be_lost(self):
        timing = PartiallySynchronousTiming(gst=100.0, delta=1.0, pre_gst_loss=1.0)
        rng = random.Random(0)
        assert timing.delivery_time(p(0), p(1), 5.0, rng) is None

    def test_before_gst_delay_is_finite(self):
        timing = PartiallySynchronousTiming(
            gst=100.0, delta=1.0, pre_gst_loss=0.0, pre_gst_max_latency=50.0
        )
        rng = random.Random(3)
        for _ in range(50):
            delivered = timing.delivery_time(p(0), p(1), sent_at=5.0, rng=rng)
            assert delivered is not None
            assert delivered <= 55.0

    def test_validation(self):
        with pytest.raises(ConfigurationError):
            PartiallySynchronousTiming(gst=-1)
        with pytest.raises(ConfigurationError):
            PartiallySynchronousTiming(delta=0)
        with pytest.raises(ConfigurationError):
            PartiallySynchronousTiming(pre_gst_loss=1.5)
        with pytest.raises(ConfigurationError):
            PartiallySynchronousTiming(delta=1.0, min_latency=2.0)
        with pytest.raises(ConfigurationError):
            PartiallySynchronousTiming(delta=5.0, pre_gst_max_latency=1.0)

    def test_describe_mentions_gst(self):
        assert "GST" in PartiallySynchronousTiming(gst=7).describe()


class TestSynchronousTiming:
    def test_step_indexing(self):
        timing = SynchronousTiming(step=2.0)
        assert timing.step_index(0.0) == 0
        assert timing.step_index(1.9) == 0
        assert timing.step_index(2.0) == 1
        assert timing.next_step_start(0.5) == 2.0
        assert timing.next_step_start(2.0) == 4.0

    def test_delivery_within_sending_step(self):
        timing = SynchronousTiming(step=1.0, delivery_fraction=0.5)
        rng = random.Random(0)
        delivered = timing.delivery_time(p(0), p(1), sent_at=3.1, rng=rng)
        assert 3.1 <= delivered < 4.0

    def test_late_send_still_delivered_before_boundary(self):
        timing = SynchronousTiming(step=1.0, delivery_fraction=0.5)
        delivered = timing.delivery_time(p(0), p(1), sent_at=3.9, rng=random.Random(0))
        assert 3.9 <= delivered < 4.0

    def test_flags_synchronous_steps(self):
        assert SynchronousTiming().synchronous_steps
        assert not AsynchronousTiming().synchronous_steps

    def test_validation(self):
        with pytest.raises(ConfigurationError):
            SynchronousTiming(step=0)
        with pytest.raises(ConfigurationError):
            SynchronousTiming(delivery_fraction=1.0)


class TestCrashSchedule:
    def test_none_has_no_faulty(self):
        assert crash_free().faulty == frozenset()

    def test_at_times(self):
        schedule = CrashSchedule.at_times({p(1): 5.0, p(2): 3.0})
        assert schedule.faulty == {p(1), p(2)}
        assert schedule.crash_time(p(1)) == 5.0
        assert schedule.crash_time(p(0)) is None
        # Events are sorted by time.
        assert [event.process for event in schedule.events] == [p(2), p(1)]

    def test_duplicate_process_rejected(self):
        with pytest.raises(ConfigurationError):
            CrashSchedule((CrashEvent(p(0), 1.0), CrashEvent(p(0), 2.0)))

    def test_negative_time_rejected(self):
        with pytest.raises(ConfigurationError):
            CrashEvent(p(0), -1.0)

    def test_partial_fraction_validated(self):
        with pytest.raises(ConfigurationError):
            CrashEvent(p(0), 1.0, partial_broadcast_fraction=1.5)

    def test_crash_processes_staggered(self):
        schedule = CrashSchedule.crash_processes([p(2), p(0)], time=10.0, stagger=1.0)
        assert schedule.crash_time(p(0)) == 10.0
        assert schedule.crash_time(p(2)) == 11.0

    def test_validate_against_unknown_process(self):
        membership = unique_identities(2)
        schedule = CrashSchedule.at_times({p(5): 1.0})
        with pytest.raises(ConfigurationError):
            schedule.validate_against(membership)

    def test_validate_against_all_crashing(self):
        membership = unique_identities(2)
        schedule = CrashSchedule.at_times({p(0): 1.0, p(1): 2.0})
        with pytest.raises(ConfigurationError):
            schedule.validate_against(membership)


class TestFailurePattern:
    def test_correct_and_faulty(self):
        membership = unique_identities(4)
        pattern = FailurePattern(membership, CrashSchedule.at_times({p(1): 5.0}))
        assert pattern.faulty == {p(1)}
        assert pattern.correct == {p(0), p(2), p(3)}
        assert pattern.max_faulty == 1

    def test_alive_at(self):
        membership = unique_identities(3)
        pattern = FailurePattern(membership, CrashSchedule.at_times({p(2): 5.0}))
        assert pattern.is_alive_at(p(2), 4.9)
        assert not pattern.is_alive_at(p(2), 5.0)
        assert pattern.alive_at(10.0) == {p(0), p(1)}

    def test_correct_processes_always_alive(self):
        membership = unique_identities(3)
        pattern = FailurePattern(membership, crash_free())
        assert pattern.alive_at(1e9) == set(membership.processes)

    def test_last_crash_time(self):
        membership = unique_identities(4)
        pattern = FailurePattern(
            membership, CrashSchedule.at_times({p(0): 3.0, p(1): 7.0})
        )
        assert pattern.last_crash_time() == 7.0
        assert FailurePattern(membership, crash_free()).last_crash_time() == 0.0

    def test_correct_identity_multiset(self, paper_example_membership):
        pattern = FailurePattern(
            paper_example_membership, CrashSchedule.at_times({p(1): 2.0})
        )
        assert pattern.correct_identity_multiset() == IdentityMultiset(["A", "B"])

    def test_rejects_schedule_killing_everyone(self):
        membership = unique_identities(2)
        with pytest.raises(ConfigurationError):
            FailurePattern(membership, CrashSchedule.at_times({p(0): 1.0, p(1): 1.0}))


@given(
    n=st.integers(min_value=2, max_value=8),
    crash_count=st.integers(min_value=0, max_value=6),
    at=st.floats(min_value=0, max_value=100, allow_nan=False),
)
def test_failure_pattern_partitions_processes(n, crash_count, at):
    crash_count = min(crash_count, n - 1)
    membership = unique_identities(n)
    schedule = CrashSchedule.at_times(
        {ProcessId(index): 1.0 + index for index in range(crash_count)}
    )
    pattern = FailurePattern(membership, schedule)
    assert pattern.correct | pattern.faulty == set(membership.processes)
    assert pattern.correct & pattern.faulty == frozenset()
    assert pattern.correct <= pattern.alive_at(at)
