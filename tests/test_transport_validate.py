"""Tier-1 coverage of the transport subsystem's pure parts.

Everything here runs without sockets or subprocesses: the validation
aggregator's edge cases (missed detections, duplicate declarations, odd and
even medians, empty cells), the wire framing, the ScenarioSpec backend
round-trip (including canonical-hash preservation for pre-backend specs),
the builder's real-backend requirement table, and a *simulated* heartbeat
run exercising the ``hb_detection`` check end to end.
"""

from __future__ import annotations

import pytest

from repro.runtime import Engine, scenario
from repro.runtime.builder import ScenarioValidationError
from repro.runtime.spec import ScenarioSpec, asynchronous, crashes_at, synchronous
from repro.transport.__main__ import build_heartbeat_spec
from repro.transport.framing import (
    MAX_FRAME_BYTES,
    FramingError,
    decode_frames,
    encode_frame,
)
from repro.transport.validate import (
    aggregate_cells,
    detection_outcome,
    heatmap_csv,
    median_iqr,
    scatter_csv,
)


# ----------------------------------------------------------------------
# detection_outcome
# ----------------------------------------------------------------------
def _dead(identity, t):
    return {"event": "declared_dead", "value": identity, "t": t}


def test_detection_outcome_missed_when_no_declaration():
    events = [{"event": "hb_ping_sent", "t": 1.0}, _dead("B", 8.0)]
    outcome = detection_outcome(events, "A", 6.0)
    assert outcome == {"missed": True, "latency": None, "t_detect": None, "declarations": 0}


def test_detection_outcome_first_declaration_wins_duplicates_counted_once():
    events = [_dead("A", 9.0), _dead("A", 8.4), _dead("A", 11.0)]
    outcome = detection_outcome(events, "A", 6.0)
    assert outcome["missed"] is False
    assert outcome["t_detect"] == 8.4  # earliest, regardless of log order
    assert outcome["latency"] == pytest.approx(2.4)
    # duplicates are *seen* (three declarations) yet fix one outcome
    assert outcome["declarations"] == 3


def test_detection_outcome_ignores_other_identities():
    outcome = detection_outcome([_dead("B", 7.0)], "A", 6.0)
    assert outcome["missed"] is True


# ----------------------------------------------------------------------
# median_iqr
# ----------------------------------------------------------------------
def test_median_iqr_empty_sample_is_none():
    assert median_iqr([]) is None


def test_median_iqr_single_value_collapses():
    assert median_iqr([5.0]) == {"median": 5.0, "q1": 5.0, "q3": 5.0, "iqr": 0.0}


def test_median_iqr_odd_count_excludes_middle():
    stats = median_iqr([5.0, 1.0, 3.0, 2.0, 4.0])
    assert stats["median"] == 3.0
    assert stats["q1"] == 1.5  # median of [1, 2]
    assert stats["q3"] == 4.5  # median of [4, 5]
    assert stats["iqr"] == 3.0


def test_median_iqr_even_count_splits_exactly():
    stats = median_iqr([4.0, 1.0, 2.0, 3.0])
    assert stats["median"] == 2.5
    assert stats["q1"] == 1.5
    assert stats["q3"] == 3.5
    assert stats["iqr"] == 2.0


# ----------------------------------------------------------------------
# aggregate_cells / CSV shapes
# ----------------------------------------------------------------------
def _trial(backend, interval, timeout, latency):
    return {"backend": backend, "hb_interval": interval, "hb_timeout": timeout, "latency": latency}


def test_aggregate_cells_keeps_all_missed_cells():
    trials = [
        _trial("real", 1.0, 3.0, 3.1),
        _trial("real", 1.0, 3.0, 2.9),
        _trial("real", 1.0, 6.0, None),
        _trial("real", 1.0, 6.0, None),
    ]
    cells = aggregate_cells(trials)
    assert len(cells) == 2
    detected = next(c for c in cells if c["hb_timeout"] == 3.0)
    missed = next(c for c in cells if c["hb_timeout"] == 6.0)
    assert detected["trials"] == 2 and detected["missed"] == 0
    assert detected["median"] == pytest.approx(3.0)
    # an all-missed cell still appears, with the statistics nulled out
    assert missed == {
        "backend": "real",
        "hb_interval": 1.0,
        "hb_timeout": 6.0,
        "trials": 2,
        "missed": 2,
        "median": None,
        "q1": None,
        "q3": None,
        "iqr": None,
    }


def test_aggregate_cells_mixed_missed_uses_surviving_latencies():
    trials = [
        _trial("sim", 1.0, 3.0, 3.0),
        _trial("sim", 1.0, 3.0, None),
        _trial("sim", 1.0, 3.0, 3.4),
    ]
    (cell,) = aggregate_cells(trials)
    assert cell["trials"] == 3 and cell["missed"] == 1
    assert cell["median"] == pytest.approx(3.2)


def test_heatmap_csv_renders_missed_cells_empty():
    cells = aggregate_cells(
        [
            _trial("real", 1.0, 3.0, 3.0),
            _trial("real", 2.0, 3.0, 3.5),
            _trial("real", 1.0, 6.0, None),
            _trial("real", 2.0, 6.0, 6.2),
        ]
    )
    text = heatmap_csv(cells, time_scale=0.05)
    lines = text.strip().split("\n")
    assert lines[0] == "hb_timeout_ms,50,100"
    assert lines[1] == "150,150.000,175.000"
    assert lines[2] == "300,,310.000"  # the missed cell is an empty field


def test_scatter_csv_has_one_row_per_cell_with_missed_counts():
    cells = aggregate_cells(
        [_trial("sim", 1.0, 3.0, 3.0), _trial("real", 1.0, 3.0, None)]
    )
    text = scatter_csv(cells, time_scale=0.05)
    lines = text.strip().split("\n")
    assert lines[0] == (
        "backend,missed,trials,hb_interval_ms,hb_timeout_ms,"
        "median_detection_ms,iqr_detection_ms"
    )
    assert "real,1,1,50,150,," in lines
    assert "sim,0,1,50,150,150.000,0.000" in lines


# ----------------------------------------------------------------------
# framing
# ----------------------------------------------------------------------
def test_framing_round_trip_and_partial_buffer():
    first = {"kind": "HB_PING", "payload": {"n": 1}}
    second = {"kind": "HB_ACK", "payload": {"n": 2}}
    wire = encode_frame(first) + encode_frame(second)
    buffer = bytearray()
    decoded = []
    # feed the stream one byte at a time: frames appear only when complete
    for offset in range(len(wire)):
        buffer.extend(wire[offset : offset + 1])
        decoded.extend(decode_frames(buffer))
    assert decoded == [first, second]
    assert not buffer  # fully consumed


def test_framing_rejects_oversized_frames():
    header = (MAX_FRAME_BYTES + 1).to_bytes(4, "big")
    with pytest.raises(FramingError):
        decode_frames(bytearray(header + b"x"))


# ----------------------------------------------------------------------
# spec round-trip and builder validation
# ----------------------------------------------------------------------
def test_sim_spec_to_dict_omits_backend_keys():
    spec = build_heartbeat_spec(backend="sim")
    payload = spec.to_dict()
    assert "backend" not in payload and "backend_params" not in payload
    # …so canonical hashes of pre-backend specs are preserved, and the
    # round-trip still defaults correctly:
    assert ScenarioSpec.from_dict(payload).backend == "sim"


def test_real_spec_round_trips_backend_params():
    spec = build_heartbeat_spec(backend="real", time_scale=0.02, log_dir="/tmp/x")
    payload = spec.to_dict()
    assert payload["backend"] == "real"
    restored = ScenarioSpec.from_dict(payload)
    assert restored.backend == "real"
    assert restored.backend_params == {"time_scale": 0.02, "log_dir": "/tmp/x"}
    assert restored.canonical_hash() == spec.canonical_hash()


def test_unknown_backend_is_rejected():
    from repro.errors import ConfigurationError

    with pytest.raises(ConfigurationError, match="backend"):
        _real_builder().program("heartbeat").backend("quantum").build()


def _real_builder(n: int = 3):
    return (
        scenario("real-validation")
        .processes(n)
        .unique_ids()
        .timing(asynchronous(min_latency=0.005, max_latency=0.05))
        .crashes(crashes_at({n - 1: 6.0}))
        .backend("real")
        .horizon(15.0)
    )


def test_real_backend_requires_a_program():
    # a consensus workload satisfies the generic "needs a workload" check,
    # so the failure is specifically the real backend's program requirement
    with pytest.raises(ScenarioValidationError, match="message-passing programs"):
        _real_builder(5).detectors("HOmega", "HSigma").consensus("homega_hsigma").build()


def test_real_backend_rejects_consensus():
    with pytest.raises(ScenarioValidationError, match="consensus or KV"):
        (
            _real_builder(5)
            .program("heartbeat")
            .detectors("HOmega", "HSigma")
            .consensus("homega_hsigma")
            .build()
        )


def test_real_backend_rejects_detector_oracles():
    with pytest.raises(ScenarioValidationError, match="omniscient"):
        _real_builder().program("heartbeat").detectors("HOmega").build()


def test_real_backend_rejects_synchronous_timing():
    with pytest.raises(ScenarioValidationError, match="synchronous rounds"):
        (
            scenario("real-hss")
            .processes(3)
            .unique_ids()
            .timing(synchronous())
            .program("heartbeat")
            .backend("real")
            .build()
        )


# ----------------------------------------------------------------------
# the hb_detection check, end to end on the simulator
# ----------------------------------------------------------------------
def test_sim_heartbeat_run_detects_the_victim():
    spec = build_heartbeat_spec(nodes=3, hb_interval=1.0, hb_timeout=3.0, fail_at=6.0)
    record = Engine().run(spec)
    assert record.metrics["hb_detection_ok"] is True
    latency = record.metrics["hb_detection_time"]
    # Snippet 1 §5: detection latency lands within one interval of the timeout
    assert 3.0 - 1.0 <= latency <= 3.0 + 1.0


def test_sim_heartbeat_run_is_deterministic():
    spec = build_heartbeat_spec(seed=7)
    first = Engine().run(spec)
    second = Engine().run(spec)
    assert first.digest == second.digest
    assert first.metrics["hb_detection_time"] == second.metrics["hb_detection_time"]
