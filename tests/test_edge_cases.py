"""Edge-case tests: minimal systems, unusual proposal types, non-default wiring."""

from __future__ import annotations

import pytest

from repro.algorithms import HSigmaSynchronousProgram, OhpPollingProgram
from repro.consensus import (
    HOmegaHSigmaConsensus,
    HOmegaMajorityConsensus,
    validate_consensus,
)
from repro.detectors import (
    HOmegaOracle,
    HSigmaOracle,
    check_diamond_hp,
    check_hsigma,
)
from repro.detectors.base import OutputKeys
from repro.identity import ProcessId
from repro.membership import Membership, anonymous_identities, unique_identities
from repro.sim import (
    AsynchronousTiming,
    CrashSchedule,
    PartiallySynchronousTiming,
    Simulation,
    SynchronousTiming,
    build_system,
)
from repro.sim.failures import FailurePattern
from repro.workloads import minority_crashes

KEYS = OutputKeys()


def p(index: int) -> ProcessId:
    return ProcessId(index)


def run_consensus(membership, factory, detectors, *, crashes=None, seed=51, until=400.0):
    schedule = CrashSchedule.at_times(crashes or {})
    system = build_system(
        membership=membership,
        timing=AsynchronousTiming(min_latency=0.1, max_latency=1.5),
        program_factory=factory,
        crash_schedule=schedule,
        detectors=detectors,
        seed=seed,
    )
    simulation = Simulation(system)
    trace = simulation.run(until=until, stop_when=lambda sim: sim.all_correct_decided())
    return trace, FailurePattern(membership, schedule)


class TestMinimalSystems:
    def test_figure8_three_processes_one_crash(self):
        membership = Membership.of(["A", "A", "B"])
        proposals = {p(0): 10, p(1): 20, p(2): 30}
        trace, pattern = run_consensus(
            membership,
            lambda pid, identity: HOmegaMajorityConsensus(proposals[pid], n=3, t=1),
            {"HOmega": lambda s: HOmegaOracle(s, stabilization_time=10.0)},
            crashes={p(2): 8.0},
        )
        verdict = validate_consensus(trace, pattern, proposals)
        assert verdict.ok, verdict.violations

    def test_figure8_single_process_system(self):
        membership = unique_identities(1)
        proposals = {p(0): "only"}
        trace, pattern = run_consensus(
            membership,
            lambda pid, identity: HOmegaMajorityConsensus("only", n=1, t=0),
            {"HOmega": lambda s: HOmegaOracle(s, stabilization_time=1.0)},
        )
        verdict = validate_consensus(trace, pattern, proposals)
        assert verdict.ok, verdict.violations
        assert verdict.decided_values[p(0)] == "only"

    def test_figure9_two_processes_one_crash(self):
        membership = anonymous_identities(2)
        proposals = {p(0): ("tuple", 1), p(1): ("tuple", 2)}
        trace, pattern = run_consensus(
            membership,
            lambda pid, identity: HOmegaHSigmaConsensus(proposals[pid]),
            {
                "HOmega": lambda s: HOmegaOracle(s, stabilization_time=10.0),
                "HSigma": lambda s: HSigmaOracle(s, stabilization_time=10.0),
            },
            crashes={p(1): 6.0},
            until=300.0,
        )
        verdict = validate_consensus(trace, pattern, proposals)
        assert verdict.ok, verdict.violations

    def test_ohp_polling_single_process(self):
        membership = unique_identities(1)
        system = build_system(
            membership=membership,
            timing=PartiallySynchronousTiming(gst=5.0, delta=1.0),
            program_factory=lambda pid, identity: OhpPollingProgram(),
            seed=3,
        )
        trace = Simulation(system).run(until=60.0)
        pattern = FailurePattern(membership, CrashSchedule.none())
        assert check_diamond_hp(trace, pattern).ok


class TestProposalTypes:
    @pytest.mark.parametrize(
        "values",
        [
            [1, 2, 3, 4],
            [(1, "a"), (2, "b"), (1, "a"), (3, "c")],
            ["same"] * 4,
        ],
    )
    def test_figure8_with_non_string_proposals(self, values):
        membership = Membership.of(["A", "A", "B", "C"])
        proposals = {p(i): values[i] for i in range(4)}
        trace, pattern = run_consensus(
            membership,
            lambda pid, identity: HOmegaMajorityConsensus(proposals[pid], n=4),
            {"HOmega": lambda s: HOmegaOracle(s, stabilization_time=10.0)},
            crashes={p(3): 7.0},
        )
        verdict = validate_consensus(trace, pattern, proposals)
        assert verdict.ok, verdict.violations


class TestNonDefaultWiring:
    def test_figure8_with_renamed_detector(self):
        membership = Membership.of(["A", "B", "B"])
        proposals = {process: process.index for process in membership.processes}
        trace, pattern = run_consensus(
            membership,
            lambda pid, identity: HOmegaMajorityConsensus(
                proposals[pid], n=3, detector_name="leader-oracle"
            ),
            {"leader-oracle": lambda s: HOmegaOracle(s, stabilization_time=5.0)},
        )
        verdict = validate_consensus(trace, pattern, proposals)
        assert verdict.ok, verdict.violations

    def test_consensus_without_trace_recording_still_decides(self):
        membership = Membership.of(["A", "A", "B"])
        proposals = {process: "v" for process in membership.processes}
        trace, pattern = run_consensus(
            membership,
            lambda pid, identity: HOmegaMajorityConsensus(
                "v", n=3, record_outputs=False
            ),
            {"HOmega": lambda s: HOmegaOracle(s, stabilization_time=5.0)},
        )
        verdict = validate_consensus(trace, pattern, proposals)
        # Decisions are still traced (ctx.decide), only auxiliary keys are not.
        assert verdict.validity_ok and verdict.agreement_ok and verdict.termination_ok
        assert verdict.max_decision_round is None

    def test_hsigma_program_runs_forever_until_horizon(self):
        membership = Membership.of(["A", "A"])
        system = build_system(
            membership=membership,
            timing=SynchronousTiming(step=1.0),
            program_factory=lambda pid, identity: HSigmaSynchronousProgram(steps=None),
            seed=2,
        )
        trace = Simulation(system).run(until=12.0)
        pattern = FailurePattern(membership, CrashSchedule.none())
        assert check_hsigma(trace, pattern).ok
        # One record per completed step, for each of the two processes.
        assert len(trace.records_of(p(0), KEYS.H_QUORA)) >= 10


class TestWorkloadEdges:
    def test_minority_crashes_with_zero_count(self):
        membership = unique_identities(4)
        schedule = minority_crashes(membership, count=0)
        assert schedule.faulty == frozenset()

    def test_minority_crashes_rejects_all_processes(self):
        from repro.errors import ConfigurationError

        membership = unique_identities(3)
        with pytest.raises(ConfigurationError):
            minority_crashes(membership, count=3)
