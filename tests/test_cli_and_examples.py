"""Smoke tests for the experiment CLI and the example scripts."""

from __future__ import annotations

import importlib.util
import subprocess
import sys
from pathlib import Path

import pytest

from repro.experiments.__main__ import main as experiments_main

EXAMPLES_DIR = Path(__file__).resolve().parent.parent / "examples"

EXAMPLES = sorted(EXAMPLES_DIR.glob("*.py"))


def _load_example(script: Path):
    """Import an example script as a module (without running ``__main__``)."""
    spec = importlib.util.spec_from_file_location(f"example_{script.stem}", script)
    module = importlib.util.module_from_spec(spec)
    spec.loader.exec_module(module)
    return module


class TestExperimentsCli:
    def test_runs_selected_experiment_and_writes_report(self, tmp_path, capsys):
        report = tmp_path / "report.txt"
        exit_code = experiments_main(["E2", "--seed", "1", "-o", str(report)])
        assert exit_code == 0
        captured = capsys.readouterr().out
        assert "E2" in captured
        assert report.exists()
        assert "E2" in report.read_text()

    def test_rejects_unknown_experiment(self, capsys):
        with pytest.raises(SystemExit):
            experiments_main(["E42"])
        assert "unknown experiment" in capsys.readouterr().err

    def test_experiment_names_are_case_insensitive(self, capsys):
        assert experiments_main(["e3"]) == 0
        assert "E3" in capsys.readouterr().out


class TestExamples:
    def test_examples_directory_has_at_least_three_scripts(self):
        assert len(EXAMPLES) >= 3

    def test_every_example_defines_main(self):
        for script in EXAMPLES:
            assert "def main(" in script.read_text(), f"{script.name} has no main()"

    @pytest.mark.parametrize("script", EXAMPLES, ids=lambda path: path.name)
    def test_example_main_runs_cleanly_in_process(self, script, capsys):
        # Importing and calling main() directly (instead of one subprocess per
        # example) keeps the smoke cheap while still executing every line.
        module = _load_example(script)
        module.main()
        captured = capsys.readouterr().out
        assert "VIOLATED" not in captured
        assert "FAILED" not in captured

    def test_example_runs_as_a_script(self):
        # One subprocess case keeps the `python examples/foo.py` entry path
        # (shebang, __main__ guard, import layout) covered end to end.
        completed = subprocess.run(
            [sys.executable, str(EXAMPLES_DIR / "quickstart.py")],
            capture_output=True,
            text=True,
            timeout=240,
        )
        assert completed.returncode == 0, completed.stderr
        assert "VIOLATED" not in completed.stdout
        assert "FAILED" not in completed.stdout
