"""Smoke tests for the experiment CLI and the example scripts."""

from __future__ import annotations

import subprocess
import sys
from pathlib import Path

import pytest

from repro.experiments.__main__ import main as experiments_main

EXAMPLES_DIR = Path(__file__).resolve().parent.parent / "examples"

EXAMPLES = sorted(EXAMPLES_DIR.glob("*.py"))


class TestExperimentsCli:
    def test_runs_selected_experiment_and_writes_report(self, tmp_path, capsys):
        report = tmp_path / "report.txt"
        exit_code = experiments_main(["E2", "--seed", "1", "-o", str(report)])
        assert exit_code == 0
        captured = capsys.readouterr().out
        assert "E2" in captured
        assert report.exists()
        assert "E2" in report.read_text()

    def test_rejects_unknown_experiment(self, capsys):
        with pytest.raises(SystemExit):
            experiments_main(["E42"])
        assert "unknown experiment" in capsys.readouterr().err

    def test_experiment_names_are_case_insensitive(self, capsys):
        assert experiments_main(["e3"]) == 0
        assert "E3" in capsys.readouterr().out


class TestExamples:
    def test_examples_directory_has_at_least_three_scripts(self):
        assert len(EXAMPLES) >= 3

    @pytest.mark.parametrize("script", EXAMPLES, ids=lambda path: path.name)
    def test_example_runs_cleanly(self, script):
        completed = subprocess.run(
            [sys.executable, str(script)],
            capture_output=True,
            text=True,
            timeout=240,
        )
        assert completed.returncode == 0, completed.stderr
        assert "VIOLATED" not in completed.stdout
        assert "FAILED" not in completed.stdout
