"""Test package marker so ``from .helpers import ...`` works under pytest."""
