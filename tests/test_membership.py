"""Tests for memberships and homonymy pattern generators."""

from __future__ import annotations

import pytest
from hypothesis import given
from hypothesis import strategies as st

from repro.errors import ConfigurationError
from repro.identity import ANONYMOUS_IDENTITY, IdentityMultiset, ProcessId
from repro.membership import (
    Membership,
    anonymous_identities,
    grouped_identities,
    identities_from_multiplicities,
    random_identities,
    unique_identities,
)


class TestMembershipBasics:
    def test_paper_example(self, paper_example_membership):
        membership = paper_example_membership
        assert membership.size == 3
        assert membership.identity_of(ProcessId(0)) == "A"
        assert membership.identity_of(ProcessId(2)) == "B"
        assert membership.identity_multiset() == IdentityMultiset(["A", "A", "B"])

    def test_processes_with_identity(self, paper_example_membership):
        assert paper_example_membership.processes_with_identity("A") == (
            ProcessId(0),
            ProcessId(1),
        )
        assert paper_example_membership.processes_with_identity("missing") == ()

    def test_homonyms_of(self, paper_example_membership):
        assert paper_example_membership.homonyms_of(ProcessId(1)) == (
            ProcessId(0),
            ProcessId(1),
        )
        assert paper_example_membership.homonyms_of(ProcessId(2)) == (ProcessId(2),)

    def test_multiplicity(self, paper_example_membership):
        assert paper_example_membership.multiplicity("A") == 2
        assert paper_example_membership.multiplicity("B") == 1
        assert paper_example_membership.multiplicity("Z") == 0

    def test_identity_of_unknown_process_raises(self, paper_example_membership):
        with pytest.raises(ConfigurationError):
            paper_example_membership.identity_of(ProcessId(99))

    def test_empty_membership_rejected(self):
        with pytest.raises(ConfigurationError):
            Membership({})

    def test_identity_multiset_of_subset(self, paper_example_membership):
        subset = [ProcessId(0), ProcessId(2)]
        assert paper_example_membership.identity_multiset(subset) == IdentityMultiset(
            ["A", "B"]
        )

    def test_processes_with_identity_in(self, paper_example_membership):
        selected = paper_example_membership.processes_with_identity_in(
            IdentityMultiset(["B"])
        )
        assert selected == (ProcessId(2),)


class TestMembershipCharacter:
    def test_unique(self):
        membership = unique_identities(4)
        assert membership.is_uniquely_identified
        assert not membership.is_anonymous
        assert membership.homonymy_degree == 1
        assert "unique" in membership.describe()

    def test_anonymous(self):
        membership = anonymous_identities(4)
        assert membership.is_anonymous
        assert not membership.is_uniquely_identified
        assert membership.homonymy_degree == 4
        assert membership.distinct_identities == frozenset({ANONYMOUS_IDENTITY})
        assert "anonymous" in membership.describe()

    def test_single_process_is_both_extremes(self):
        membership = unique_identities(1)
        assert membership.is_uniquely_identified
        assert membership.is_anonymous

    def test_grouped(self):
        membership = grouped_identities([3, 2, 1])
        assert membership.size == 6
        assert membership.homonymy_degree == 3
        assert len(membership.distinct_identities) == 3
        assert "homonymous" in membership.describe()


class TestGenerators:
    def test_unique_identities_are_distinct(self):
        membership = unique_identities(10)
        assert len(membership.distinct_identities) == 10

    def test_generators_reject_non_positive_sizes(self):
        with pytest.raises(ConfigurationError):
            unique_identities(0)
        with pytest.raises(ConfigurationError):
            anonymous_identities(-1)
        with pytest.raises(ConfigurationError):
            grouped_identities([])
        with pytest.raises(ConfigurationError):
            grouped_identities([2, 0])

    def test_identities_from_multiplicities(self):
        membership = identities_from_multiplicities({"A": 2, "B": 1})
        assert membership.identity_multiset() == IdentityMultiset(["A", "A", "B"])

    def test_identities_from_multiplicities_rejects_zero(self):
        with pytest.raises(ConfigurationError):
            identities_from_multiplicities({"A": 0})

    def test_random_identities_deterministic_for_seed(self):
        first = random_identities(8, domain_size=3, seed=7)
        second = random_identities(8, domain_size=3, seed=7)
        assert first.identity_multiset() == second.identity_multiset()

    def test_random_identities_bounded_domain(self):
        membership = random_identities(20, domain_size=2, seed=1)
        assert len(membership.distinct_identities) <= 2

    def test_random_identities_validation(self):
        with pytest.raises(ConfigurationError):
            random_identities(5, domain_size=0, seed=1)


@given(st.lists(st.sampled_from(["x", "y", "z"]), min_size=1, max_size=8))
def test_identity_multiset_size_matches_membership(identities):
    membership = Membership.of(identities)
    assert len(membership.identity_multiset()) == membership.size
    # Sum of per-identity multiplicities equals n.
    assert sum(membership.multiplicity(i) for i in membership.distinct_identities) == membership.size


@given(st.integers(min_value=1, max_value=10))
def test_anonymous_membership_always_degree_n(n):
    membership = anonymous_identities(n)
    assert membership.homonymy_degree == n
