"""Unit tests for KV command encoding and the replicated state machine."""

from __future__ import annotations

import pytest

from repro.workloads.kv import (
    ApplyResult,
    ReplicatedKV,
    decode_command,
    encode_command,
)


class TestCommandEncoding:
    def test_round_trip(self):
        command = encode_command("c0:1", "SET", "k3", "v-c0-1")
        assert decode_command(command) == ("c0:1", "SET", "k3", ("v-c0-1",))

    def test_round_trip_without_args(self):
        assert decode_command(encode_command("c1:0", "GET", "k0")) == ("c1:0", "GET", "k0", ())

    def test_cas_carries_expected_and_new(self):
        command = encode_command("c0:2", "CAS", "k1", None, "v-new")
        assert decode_command(command) == ("c0:2", "CAS", "k1", (None, "v-new"))

    def test_commands_are_orderable_strings(self):
        # Consensus coordination breaks ties with min() over proposals.
        a = encode_command("a:0", "SET", "k0", "x")
        b = encode_command("b:0", "SET", "k0", "x")
        assert isinstance(a, str) and min(a, b) == a

    def test_unknown_operation_rejected(self):
        with pytest.raises(ValueError):
            encode_command("c0:0", "INCR", "k0")


class TestReplicatedKV:
    def test_set_then_get(self):
        store = ReplicatedKV()
        assert store.apply(encode_command("r1", "SET", "k", "v1")) == ApplyResult("ok", "v1", 1)
        assert store.apply(encode_command("r2", "GET", "k")) == ApplyResult("ok", "v1", 1)

    def test_get_absent_key(self):
        store = ReplicatedKV()
        assert store.apply(encode_command("r1", "GET", "k")) == ApplyResult("ok", None, 0)

    def test_versions_are_per_key_and_monotone(self):
        store = ReplicatedKV()
        store.apply(encode_command("r1", "SET", "a", "v1"))
        store.apply(encode_command("r2", "SET", "a", "v2"))
        store.apply(encode_command("r3", "SET", "b", "w1"))
        assert store.read("a") == ("v2", 2)
        assert store.read("b") == ("w1", 1)

    def test_cas_success(self):
        store = ReplicatedKV()
        store.apply(encode_command("r1", "SET", "k", "v1"))
        result = store.apply(encode_command("r2", "CAS", "k", "v1", "v2"))
        assert result == ApplyResult("ok", "v2", 2)
        assert store.read("k") == ("v2", 2)

    def test_cas_failure_returns_current_value_and_keeps_version(self):
        store = ReplicatedKV()
        store.apply(encode_command("r1", "SET", "k", "v1"))
        result = store.apply(encode_command("r2", "CAS", "k", "stale", "v2"))
        assert result == ApplyResult("fail", "v1", 1)
        assert store.read("k") == ("v1", 1)

    def test_cas_none_matches_absent_key(self):
        store = ReplicatedKV()
        result = store.apply(encode_command("r1", "CAS", "k", None, "v1"))
        assert result == ApplyResult("ok", "v1", 1)

    def test_del_existing_and_absent(self):
        store = ReplicatedKV()
        store.apply(encode_command("r1", "SET", "k", "v1"))
        assert store.apply(encode_command("r2", "DEL", "k")) == ApplyResult("ok", None, 2)
        assert store.apply(encode_command("r3", "DEL", "k")) == ApplyResult("miss", None, 2)
        assert store.read("k") == (None, 2)

    def test_duplicate_request_id_applies_once(self):
        store = ReplicatedKV()
        command = encode_command("r1", "SET", "k", "v1")
        first = store.apply(command)
        assert first is not None
        assert store.apply(command) is None
        assert store.commands_applied == 1
        assert store.result_for("r1") == first

    def test_snapshot_and_len(self):
        store = ReplicatedKV()
        store.apply(encode_command("r1", "SET", "a", "v1"))
        store.apply(encode_command("r2", "SET", "b", "v2"))
        store.apply(encode_command("r3", "DEL", "a"))
        assert store.snapshot() == {"b": "v2"}
        assert len(store) == 1

    def test_determinism_same_commands_same_state(self):
        commands = [
            encode_command("r1", "SET", "a", "v1"),
            encode_command("r2", "CAS", "a", "v1", "v2"),
            encode_command("r3", "SET", "b", "w"),
            encode_command("r4", "DEL", "b"),
        ]
        one, two = ReplicatedKV(), ReplicatedKV()
        for command in commands:
            one.apply(command)
            two.apply(command)
        assert one.snapshot() == two.snapshot()
        assert one.read("a") == two.read("a")
