"""Shared fixtures and helper programs used across the test suite."""

from __future__ import annotations

import signal

import pytest

from repro.identity import ProcessId
from repro.membership import (
    Membership,
    anonymous_identities,
    grouped_identities,
    unique_identities,
)


@pytest.fixture
def paper_example_membership() -> Membership:
    """The paper's running example: ids A, A, B for processes p0, p1, p2."""
    return Membership.of(["A", "A", "B"])


@pytest.fixture
def unique_five() -> Membership:
    """Five processes with unique identifiers (a classical AS membership)."""
    return unique_identities(5)


@pytest.fixture
def anonymous_five() -> Membership:
    """Five anonymous processes."""
    return anonymous_identities(5)


@pytest.fixture
def homonymous_six() -> Membership:
    """Six processes in three homonymy groups of sizes 3, 2, 1."""
    return grouped_identities([3, 2, 1])


def pid(index: int) -> ProcessId:
    """Shorthand for building process ids in tests."""
    return ProcessId(index)


#: Hard wall-clock ceiling for a single ``transport``-marked test.  Real
#: runs budget a few seconds each; a wedged mesh (a node that never dials
#: out, a lost control frame) would otherwise hang the whole session.
TRANSPORT_TEST_TIMEOUT_SECONDS = 120


@pytest.hookimpl(wrapper=True)
def pytest_runtest_call(item):
    """Enforce a SIGALRM deadline on transport tests (pytest-timeout is not
    installed in this environment, so the hook is the timeout)."""
    marker = item.get_closest_marker("transport")
    if marker is None or not hasattr(signal, "SIGALRM"):
        return (yield)
    seconds = int(marker.kwargs.get("timeout", TRANSPORT_TEST_TIMEOUT_SECONDS))

    def _expired(signum, frame):
        raise TimeoutError(f"transport test exceeded its hard {seconds}s timeout")

    previous = signal.signal(signal.SIGALRM, _expired)
    signal.alarm(seconds)
    try:
        return (yield)
    finally:
        signal.alarm(0)
        signal.signal(signal.SIGALRM, previous)
