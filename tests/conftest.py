"""Shared fixtures and helper programs used across the test suite."""

from __future__ import annotations

import pytest

from repro.identity import ProcessId
from repro.membership import (
    Membership,
    anonymous_identities,
    grouped_identities,
    unique_identities,
)


@pytest.fixture
def paper_example_membership() -> Membership:
    """The paper's running example: ids A, A, B for processes p0, p1, p2."""
    return Membership.of(["A", "A", "B"])


@pytest.fixture
def unique_five() -> Membership:
    """Five processes with unique identifiers (a classical AS membership)."""
    return unique_identities(5)


@pytest.fixture
def anonymous_five() -> Membership:
    """Five anonymous processes."""
    return anonymous_identities(5)


@pytest.fixture
def homonymous_six() -> Membership:
    """Six processes in three homonymy groups of sizes 3, 2, 1."""
    return grouped_identities([3, 2, 1])


def pid(index: int) -> ProcessId:
    """Shorthand for building process ids in tests."""
    return ProcessId(index)
